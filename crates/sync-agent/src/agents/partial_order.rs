//! The partial-order (PO) replication agent.
//!
//! The PO agent (§4.5, Figure 4b) relaxes the total-order discipline: a slave
//! thread may execute its next recorded sync op as soon as every *dependent*
//! op — an earlier recorded op on the same memory location — has completed,
//! even if unrelated earlier ops are still outstanding.  Slaves therefore
//! scan a look-ahead window of the shared buffer instead of only its head.
//!
//! The design removes the unnecessary stalls of the TO agent but keeps its
//! scalability problems: all master threads still share one write cursor and
//! all slave threads share per-variant completion state, which the paper
//! identifies as the source of cache contention in `radiosity`,
//! `fluidanimate`, `dedup` and friends.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::context::{AgentConfig, SyncContext, VariantRole, MAX_THREADS};
use crate::guards::{GuardTable, Waiter};
use crate::ring::{RecordRing, SyncRecord};
use crate::stats::{AgentStats, SharedStats};
use crate::SyncAgent;

use super::AgentKind;

/// Per-slave replay state, all pre-allocated (§3.3: no dynamic allocation).
#[derive(Debug)]
struct SlaveState {
    /// `completed[pos % capacity] == pos + 1` once this slave finished the op
    /// recorded at `pos`.
    completed: Vec<AtomicU64>,
    /// The skip index's claimed bitmap: `claimed_map[pos % capacity] ==
    /// pos + 1` once *some* thread of this slave has claimed the record at
    /// `pos` for replay.  Lets a thread scanning for its own next record
    /// skip a claimed slot on one load instead of re-reading the record and
    /// its completion state — claimed records can never be the scanner's
    /// (only thread `t` claims thread-`t` records, and `t` never scans while
    /// it holds a claim).
    claimed_map: Vec<AtomicU64>,
    /// Per-thread position of the op claimed between `before` and `after`,
    /// stored as `pos + 1` (0 = none).
    claimed: Vec<AtomicU64>,
    /// The skip index's per-thread resume position: the position after this
    /// thread's most recently claimed record — its scan for the next own
    /// record restarts here, never from the frontier.
    scan_from: Vec<AtomicU64>,
}

impl SlaveState {
    fn new(capacity: usize) -> Self {
        SlaveState {
            completed: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            claimed_map: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            claimed: (0..MAX_THREADS).map(|_| AtomicU64::new(0)).collect(),
            scan_from: (0..MAX_THREADS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Partial-order replication agent.
#[derive(Debug)]
pub struct PartialOrderAgent {
    config: AgentConfig,
    ring: RecordRing,
    guards: GuardTable,
    waiter: Waiter,
    stats: SharedStats,
    slaves: Vec<SlaveState>,
    poisoned: AtomicBool,
    hook: super::HookCell,
}

impl PartialOrderAgent {
    /// Creates a partial-order agent for `config.variants` variants.
    pub fn new(config: AgentConfig) -> Self {
        let readers = config.slave_count().max(1);
        let waiter = config.waiter();
        PartialOrderAgent {
            ring: RecordRing::new(config.buffer_capacity, readers),
            guards: GuardTable::with_waiter(config.guard_buckets, waiter),
            waiter,
            stats: SharedStats::new(),
            slaves: (0..readers)
                .map(|_| SlaveState::new(config.buffer_capacity))
                .collect(),
            poisoned: AtomicBool::new(false),
            hook: super::HookCell::new(),
            config,
        }
    }

    /// The agent's sizing configuration.
    pub fn config(&self) -> &AgentConfig {
        &self.config
    }

    fn capacity(&self) -> u64 {
        self.config.buffer_capacity as u64
    }

    fn dependency_key(addr: u64) -> u64 {
        // Two ops are dependent when they touch the same 64-bit word; this is
        // the same alignment rule the clock wall uses.
        addr & !7
    }

    fn master_before(&self, ctx: &SyncContext, addr: u64) {
        let bucket = self.guards.bucket_for(addr);
        if super::push_record_guarded(
            &self.guards,
            bucket,
            &self.ring,
            &self.waiter,
            |tally| self.stats.count_master_wait(ctx.thread, tally),
            || self.is_poisoned(),
            || SyncRecord::simple(ctx.thread as u32, addr),
        ) {
            self.stats.count_record(ctx.thread);
        }
    }

    fn master_after(&self, _ctx: &SyncContext, addr: u64) {
        self.guards.release(self.guards.bucket_for(addr));
    }

    /// Whether this slave has completed the op recorded at `pos`.
    fn is_completed(&self, slave: usize, pos: u64) -> bool {
        let slot = (pos % self.capacity()) as usize;
        self.slaves[slave].completed[slot].load(Ordering::Acquire) == pos + 1
    }

    /// Whether some thread of this slave has claimed the record at `pos`.
    fn is_claimed(&self, slave: usize, pos: u64) -> bool {
        let slot = (pos % self.capacity()) as usize;
        self.slaves[slave].claimed_map[slot].load(Ordering::Acquire) == pos + 1
    }

    /// Finds the next record belonging to `thread`, scanning forward from the
    /// thread's resume position (the skip index: never from the frontier).
    /// Returns `None` when it has not been published yet or lies outside the
    /// look-ahead window.
    fn find_own_record(&self, slave: usize, thread: u32) -> Option<(u64, SyncRecord)> {
        let frontier = self.ring.reader_pos(slave);
        let window_end = frontier + self.config.lookahead_window as u64;
        let start = self.slaves[slave].scan_from[thread as usize]
            .load(Ordering::Acquire)
            .max(frontier);
        let published = self.ring.write_pos();
        let mut pos = start;
        while pos < published && pos < window_end {
            // Skip-index fast path: a claimed record belongs to another
            // thread (a thread never scans while holding its own claim), so
            // one bitmap load replaces reading the record and its
            // completion slot.
            if self.is_claimed(slave, pos) {
                pos += 1;
                continue;
            }
            match self.ring.get(pos) {
                Some(rec) if rec.thread == thread && !self.is_completed(slave, pos) => {
                    return Some((pos, rec));
                }
                Some(_) => pos += 1,
                None => return None,
            }
        }
        None
    }

    /// Whether the record at `q` still blocks an op on `key`: it is not yet
    /// completed and either touches the same 64-bit word or is not yet
    /// published (so its word is unknown).  A record never changes once
    /// published and completion is sticky, so a `false` verdict is final —
    /// which is what lets the dependency scan resume instead of rescanning.
    ///
    /// Only valid for `q` at or ahead of the completion frontier: both the
    /// completion slot and the ring slot are generation-tagged
    /// (`value == q + 1`), so once the ring wraps past a below-frontier `q`
    /// its slots are recycled to a later generation and this would report
    /// "blocked" forever.  Re-checks of a *cached* position must go through
    /// [`still_blocks`](Self::still_blocks).
    fn blocks(&self, slave: usize, q: u64, key: u64) -> bool {
        if self.is_completed(slave, q) {
            return false;
        }
        match self.ring.get(q) {
            Some(rec) => Self::dependency_key(rec.addr) == key,
            None => true,
        }
    }

    /// Re-evaluates a blocker position cached across waiter polls.
    ///
    /// Unlike [`blocks`](Self::blocks) this is safe for a stale `b`: a
    /// position below the completion frontier is complete by definition
    /// (the frontier only advances over completed records), even when the
    /// ring has since wrapped and recycled `b`'s completion and record
    /// slots to a later generation — the case where the exact-generation
    /// checks in `blocks` would never resolve the blocker.
    fn still_blocks(&self, slave: usize, b: u64, key: u64) -> bool {
        b >= self.ring.reader_pos(slave) && self.blocks(slave, b, key)
    }

    fn slave_before(&self, ctx: &SyncContext, slave: usize) {
        let thread = ctx.thread as u32;
        // The wait's local skip state: the record we found for ourselves,
        // the first position that still blocks it, and how far the
        // dependency scan has verified.  Each poll resumes where the last
        // one stopped — typically re-checking a single blocker slot —
        // instead of rescanning the whole window from the frontier.
        let mut found: Option<(u64, u64)> = None; // (pos, dependency key)
        let mut blocker: Option<u64> = None;
        let mut dep_checked_to = 0u64;
        let mut claimed = None;
        let tally = self.waiter.wait_until_event(self.ring.events(), || {
            if self.is_poisoned() {
                return true;
            }
            let (pos, key) = match found {
                Some(f) => f,
                None => match self.find_own_record(slave, thread) {
                    Some((pos, rec)) => {
                        let key = Self::dependency_key(rec.addr);
                        found = Some((pos, key));
                        dep_checked_to = self.ring.reader_pos(slave);
                        (pos, key)
                    }
                    None => return false,
                },
            };
            if let Some(b) = blocker {
                if self.still_blocks(slave, b, key) {
                    return false;
                }
                // The blocker resolved (completed — possibly observed only
                // through the frontier having passed it — or published as
                // non-dependent); it has now been evaluated for good.
                blocker = None;
                dep_checked_to = dep_checked_to.max(b + 1);
            }
            // Resume the dependency scan.  Positions below the frontier are
            // complete by definition, and positions below `dep_checked_to`
            // were already verified non-blocking (both verdicts are final).
            let mut q = dep_checked_to.max(self.ring.reader_pos(slave));
            while q < pos {
                if self.blocks(slave, q, key) {
                    blocker = Some(q);
                    dep_checked_to = q;
                    return false;
                }
                q += 1;
            }
            claimed = Some(pos);
            true
        });
        let Some(pos) = claimed else {
            // Poisoned bail-out: nothing was claimed; `slave_after` observes
            // `claimed == 0` and leaves the replay state untouched.
            return;
        };
        let state = &self.slaves[slave];
        let slot = (pos % self.capacity()) as usize;
        state.claimed_map[slot].store(pos + 1, Ordering::Release);
        state.claimed[ctx.thread].store(pos + 1, Ordering::Release);
        state.scan_from[ctx.thread].store(pos + 1, Ordering::Release);
        self.stats.count_slave_wait(ctx.thread, tally);
        self.stats.count_replay(ctx.thread);
    }

    fn slave_after(&self, ctx: &SyncContext, slave: usize) {
        let claimed = self.slaves[slave].claimed[ctx.thread].swap(0, Ordering::AcqRel);
        debug_assert!(
            claimed > 0 || self.is_poisoned(),
            "after_sync_op without matching before_sync_op"
        );
        if claimed == 0 {
            return;
        }
        let pos = claimed - 1;
        let slot = (pos % self.capacity()) as usize;
        self.slaves[slave].completed[slot].store(pos + 1, Ordering::Release);
        // Advance the completion frontier over the completed prefix so the
        // master can reuse those slots.
        loop {
            let frontier = self.ring.reader_pos(slave);
            if !self.is_completed(slave, frontier) {
                break;
            }
            if !self.ring.try_advance_reader(slave, frontier) {
                // Another thread advanced it; re-check from the new frontier.
                continue;
            }
        }
        // A completion that did not move the frontier can still unblock a
        // dependency waiter parked on the ring; post the event count
        // explicitly (frontier advances already post it).
        self.ring.events().notify();
    }
}

impl SyncAgent for PartialOrderAgent {
    fn kind(&self) -> AgentKind {
        AgentKind::PartialOrder
    }

    fn before_sync_op(&self, ctx: &SyncContext, addr: u64) {
        // Replication point: flush deferred work before any guard is taken.
        self.hook.sync_op(ctx, &self.stats);
        match ctx.role {
            VariantRole::Master => self.master_before(ctx, addr),
            VariantRole::Slave { index } => self.slave_before(ctx, index),
        }
    }

    fn after_sync_op(&self, ctx: &SyncContext, addr: u64) {
        match ctx.role {
            VariantRole::Master => self.master_after(ctx, addr),
            VariantRole::Slave { index } => self.slave_after(ctx, index),
        }
    }

    fn stats(&self) -> AgentStats {
        let mut stats = self.stats.snapshot();
        stats.cursor_rescans = self.ring.rescans();
        stats
    }

    fn lane_stats(&self, lane: usize) -> AgentStats {
        self.stats.lane_snapshot(lane)
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        // Unpark masters waiting on buffer space and slaves parked in the
        // look-ahead wait.
        self.ring.events().notify_all();
        self.hook.poisoned();
    }

    fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    fn set_replication_hook(&self, hook: crate::ReplicationHook) {
        self.hook.install(hook);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_sync_op;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn config() -> AgentConfig {
        AgentConfig::default()
            .with_variants(2)
            .with_threads(2)
            .with_buffer_capacity(256)
            .with_lookahead_window(64)
    }

    #[test]
    fn same_thread_replay_follows_record_order() {
        let agent = PartialOrderAgent::new(config());
        let master = SyncContext::new(VariantRole::Master, 0);
        let addrs = [0x10u64, 0x20, 0x10, 0x30];
        for &a in &addrs {
            with_sync_op(&agent, &master, a, || {});
        }
        let slave = SyncContext::new(VariantRole::Slave { index: 0 }, 0);
        for &a in &addrs {
            with_sync_op(&agent, &slave, a, || {});
        }
        let s = agent.stats();
        assert_eq!(s.ops_recorded, 4);
        assert_eq!(s.ops_replayed, 4);
    }

    #[test]
    fn independent_ops_do_not_stall_out_of_order_threads() {
        // Master records thread 0 (lock A) before thread 1 (lock B).  In the
        // slave, thread 1 arrives first; because its op is independent it may
        // proceed immediately — the Figure 4b behaviour that distinguishes PO
        // from TO.
        let agent = Arc::new(PartialOrderAgent::new(config()));
        let m0 = SyncContext::new(VariantRole::Master, 0);
        let m1 = SyncContext::new(VariantRole::Master, 1);
        with_sync_op(agent.as_ref(), &m0, 0xA000, || {});
        with_sync_op(agent.as_ref(), &m0, 0xA000, || {});
        with_sync_op(agent.as_ref(), &m1, 0xB000, || {});
        with_sync_op(agent.as_ref(), &m1, 0xB000, || {});

        // Slave: only thread 1 runs; it must complete both of its ops without
        // waiting for thread 0.
        let a1 = Arc::clone(&agent);
        let done = Arc::new(AtomicU64::new(0));
        let d1 = Arc::clone(&done);
        let handle = std::thread::spawn(move || {
            let ctx = SyncContext::new(VariantRole::Slave { index: 0 }, 1);
            with_sync_op(a1.as_ref(), &ctx, 0xBB00, || {
                d1.fetch_add(1, Ordering::SeqCst)
            });
            with_sync_op(a1.as_ref(), &ctx, 0xBB00, || {
                d1.fetch_add(1, Ordering::SeqCst)
            });
        });
        handle.join().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 2);

        // Thread 0 replays afterwards; everything still completes.
        let ctx0 = SyncContext::new(VariantRole::Slave { index: 0 }, 0);
        with_sync_op(agent.as_ref(), &ctx0, 0xAA00, || {});
        with_sync_op(agent.as_ref(), &ctx0, 0xAA00, || {});
        assert_eq!(agent.stats().ops_replayed, 4);
    }

    #[test]
    fn dependent_ops_are_serialized_in_recorded_order() {
        // Master: thread 0 then thread 1 touch the SAME variable.  The slave
        // must not let thread 1 run before thread 0 even if thread 1 arrives
        // first.
        let agent = Arc::new(PartialOrderAgent::new(config()));
        let m0 = SyncContext::new(VariantRole::Master, 0);
        let m1 = SyncContext::new(VariantRole::Master, 1);
        with_sync_op(agent.as_ref(), &m0, 0xC000, || {});
        with_sync_op(agent.as_ref(), &m1, 0xC000, || {});

        let order = Arc::new(AtomicU64::new(0));
        let a1 = Arc::clone(&agent);
        let o1 = Arc::clone(&order);
        let t1 = std::thread::spawn(move || {
            let ctx = SyncContext::new(VariantRole::Slave { index: 0 }, 1);
            with_sync_op(a1.as_ref(), &ctx, 0xCC00, || {
                o1.fetch_add(1, Ordering::SeqCst)
            })
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(order.load(Ordering::SeqCst), 0, "dependent op must stall");

        let a0 = Arc::clone(&agent);
        let o0 = Arc::clone(&order);
        let t0 = std::thread::spawn(move || {
            let ctx = SyncContext::new(VariantRole::Slave { index: 0 }, 0);
            with_sync_op(a0.as_ref(), &ctx, 0xCC00, || {
                o0.fetch_add(1, Ordering::SeqCst)
            })
        });
        assert_eq!(t0.join().unwrap(), 0);
        assert_eq!(t1.join().unwrap(), 1);
        assert!(agent.stats().slave_stalls >= 1);
    }

    #[test]
    fn frontier_advances_over_completed_prefix() {
        let agent = PartialOrderAgent::new(config());
        let master = SyncContext::new(VariantRole::Master, 0);
        for i in 0..5u64 {
            with_sync_op(&agent, &master, 0x100 + i * 8, || {});
        }
        let slave = SyncContext::new(VariantRole::Slave { index: 0 }, 0);
        for i in 0..5u64 {
            with_sync_op(&agent, &slave, 0x100 + i * 8, || {});
        }
        assert_eq!(agent.ring.reader_pos(0), 5);
    }

    #[test]
    fn cached_blocker_resolves_after_its_slot_is_recycled() {
        // Deterministic regression test for the stale-blocker hang: a
        // waiter for the op at position 1 caches position 0 (same word) as
        // its blocker.  Position 0 then completes, the frontier passes it,
        // the master wraps the 8-slot ring, and the record recycled into
        // slot 0 (position 8) is replayed — recycling both the ring slot
        // *and* the completion slot to generation 8.  That is exactly the
        // state a waiter that slept through the frontier advance (a park
        // lasts up to 1 ms) re-checks against: `blocks` can no longer
        // recognise position 0 as complete (both slots are
        // generation-tagged), so the cached re-check must resolve the
        // blocker via the frontier instead of stalling forever.
        let cfg = AgentConfig::default()
            .with_variants(2)
            .with_threads(2)
            .with_buffer_capacity(8)
            .with_lookahead_window(8);
        let agent = PartialOrderAgent::new(cfg);
        let hot = 0xF000u64;
        let key = PartialOrderAgent::dependency_key(hot);

        // Master: thread 0 then thread 1 touch the hot word.
        let m0 = SyncContext::new(VariantRole::Master, 0);
        let m1 = SyncContext::new(VariantRole::Master, 1);
        with_sync_op(&agent, &m0, hot, || {});
        with_sync_op(&agent, &m1, hot, || {});
        // A slave waiter for position 1 would now cache position 0 as its
        // blocker.
        assert!(agent.still_blocks(0, 0, key));

        // Slave thread 0 replays position 0; the frontier passes it.
        let s0 = SyncContext::new(VariantRole::Slave { index: 0 }, 0);
        with_sync_op(&agent, &s0, hot, || {});
        assert_eq!(agent.ring.reader_pos(0), 1);

        // Master thread 0 records 7 more (independent) ops, filling
        // positions 2..=8, and slave thread 0 replays them — position 1 is
        // not a dependency of any of them, so they complete around it.
        // Completing position 8 overwrites completion slot 0 with
        // generation 8, and the push of position 8 recycled ring slot 0.
        for i in 0..7u64 {
            with_sync_op(&agent, &m0, 0x2_0000 + i * 8, || {});
            with_sync_op(&agent, &s0, 0x2_0000 + i * 8, || {});
        }
        assert_eq!(agent.ring.write_pos(), 9);
        assert!(
            agent.ring.get(0).is_none(),
            "ring slot 0 must have been recycled for the scenario to be real"
        );
        assert!(
            !agent.is_completed(0, 0),
            "completion slot 0 must have been recycled for the scenario to be real"
        );

        // The raw exact-generation check can no longer tell position 0 is
        // complete; the frontier-aware re-check used for cached blockers
        // must.
        assert!(agent.blocks(0, 0, key), "blocks() cannot see the wrap");
        assert!(
            !agent.still_blocks(0, 0, key),
            "a blocker below the frontier is complete by definition"
        );
    }

    #[test]
    fn dependency_waiters_survive_ring_wrap() {
        // Regression test: a waiter caches its blocker position across
        // polls.  With a tiny ring the blocker completes, the frontier
        // passes it and the slot is recycled to a later generation while
        // the waiter is between polls (parked for up to 1 ms); the re-check
        // must then treat the below-frontier blocker as resolved instead of
        // reading the recycled slot's exact-generation state and stalling
        // forever.  Master and slave run concurrently so the ring wraps
        // continuously; every thread regularly touches one hot word (so
        // waiters cache blockers) but also streams independent ops (so
        // other threads race ahead and wrap the ring over a cached
        // blocker's slot).  Thread count exceeds typical core counts so
        // parked waiters really do sleep through frontier advances.
        let threads = 8usize;
        let per_thread = 300u64;
        let cfg = AgentConfig::default()
            .with_variants(2)
            .with_threads(threads)
            .with_buffer_capacity(8)
            .with_lookahead_window(8);
        let agent = Arc::new(PartialOrderAgent::new(cfg));
        let addr_for = |t: usize, i: u64| {
            if i.is_multiple_of(3) {
                0xF000u64
            } else {
                0x1_0000 + (t as u64) * 64 + (i % 3) * 8
            }
        };

        let mut handles = Vec::new();
        for t in 0..threads {
            let agent = Arc::clone(&agent);
            handles.push(std::thread::spawn(move || {
                let ctx = SyncContext::new(VariantRole::Master, t);
                for i in 0..per_thread {
                    with_sync_op(agent.as_ref(), &ctx, addr_for(t, i), || {});
                }
            }));
        }
        for t in 0..threads {
            let agent = Arc::clone(&agent);
            handles.push(std::thread::spawn(move || {
                let ctx = SyncContext::new(VariantRole::Slave { index: 0 }, t);
                for i in 0..per_thread {
                    with_sync_op(agent.as_ref(), &ctx, addr_for(t, i), || {});
                }
            }));
        }
        // Watchdog: the pre-fix failure mode is a permanent stall, so turn
        // "a waiter never resolves its recycled blocker" into a test
        // failure instead of a hung test run.
        let (tx, rx) = std::sync::mpsc::channel();
        let joiner = std::thread::spawn(move || {
            for h in handles {
                h.join().unwrap();
            }
            let _ = tx.send(());
        });
        if rx.recv_timeout(std::time::Duration::from_secs(60)).is_err() {
            agent.poison();
            panic!("dependency waiter stalled: blocker slot recycled by a ring wrap");
        }
        joiner.join().unwrap();
        let total = threads as u64 * per_thread;
        let s = agent.stats();
        assert_eq!(s.ops_recorded, total);
        assert_eq!(s.ops_replayed, total);
        assert_eq!(agent.ring.reader_pos(0), total);
    }

    #[test]
    fn concurrent_master_and_slave_threads_complete() {
        let cfg = AgentConfig::default()
            .with_variants(2)
            .with_threads(4)
            .with_buffer_capacity(1024)
            .with_lookahead_window(128);
        let agent = Arc::new(PartialOrderAgent::new(cfg));
        let per_thread = 200u64;

        // Master phase: 4 threads, two shared variables.
        let mut handles = Vec::new();
        for t in 0..4usize {
            let agent = Arc::clone(&agent);
            handles.push(std::thread::spawn(move || {
                let ctx = SyncContext::new(VariantRole::Master, t);
                for i in 0..per_thread {
                    let addr = if i % 2 == 0 {
                        0xD000
                    } else {
                        0xE000 + (t as u64) * 64
                    };
                    with_sync_op(agent.as_ref(), &ctx, addr, || {});
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }

        // Slave phase: same four threads replay concurrently.
        let mut handles = Vec::new();
        for t in 0..4usize {
            let agent = Arc::clone(&agent);
            handles.push(std::thread::spawn(move || {
                let ctx = SyncContext::new(VariantRole::Slave { index: 0 }, t);
                for i in 0..per_thread {
                    let addr = if i % 2 == 0 {
                        0xD100
                    } else {
                        0xE100 + (t as u64) * 64
                    };
                    with_sync_op(agent.as_ref(), &ctx, addr, || {});
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = agent.stats();
        assert_eq!(s.ops_recorded, 4 * per_thread);
        assert_eq!(s.ops_replayed, 4 * per_thread);
        assert_eq!(agent.ring.reader_pos(0), 4 * per_thread);
    }
}
