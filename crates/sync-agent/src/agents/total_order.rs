//! The total-order (TO) replication agent.
//!
//! The TO agent is the simplest of the paper's three designs (§4.5,
//! Figure 4a): every sync op executed by any master thread is appended to a
//! single shared sync buffer, and every slave variant replays the buffer in
//! exactly that order.  A slave thread whose next recorded op is *not* at the
//! head of the unconsumed log must stall, even when the op it wants to
//! execute is completely unrelated to the op at the head — the source of the
//! unnecessary stalls the figure highlights with the red bar.
//!
//! On the master side, all threads share one write cursor, which produces the
//! read-write sharing (cache-line ping-pong) the paper identifies as the
//! scalability limit of this design.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::context::{AgentConfig, SyncContext, VariantRole};
use crate::guards::{GuardTable, Waiter};
use crate::ring::{RecordRing, SyncRecord};
use crate::stats::{AgentStats, SharedStats};
use crate::SyncAgent;

use super::AgentKind;

/// Total-order replication agent.
#[derive(Debug)]
pub struct TotalOrderAgent {
    config: AgentConfig,
    ring: RecordRing,
    guards: GuardTable,
    waiter: Waiter,
    stats: SharedStats,
    poisoned: AtomicBool,
    hook: super::HookCell,
}

impl TotalOrderAgent {
    /// Creates a total-order agent for `config.variants` variants.
    pub fn new(config: AgentConfig) -> Self {
        let readers = config.slave_count().max(1);
        let waiter = config.waiter();
        TotalOrderAgent {
            ring: RecordRing::new(config.buffer_capacity, readers),
            guards: GuardTable::with_waiter(config.guard_buckets, waiter),
            waiter,
            stats: SharedStats::new(),
            poisoned: AtomicBool::new(false),
            hook: super::HookCell::new(),
            config,
        }
    }

    /// The agent's sizing configuration.
    pub fn config(&self) -> &AgentConfig {
        &self.config
    }

    /// Number of records currently recorded and not yet consumed by the
    /// slowest slave.
    pub fn max_backlog(&self) -> u64 {
        (0..self.config.slave_count().max(1))
            .map(|s| self.ring.backlog(s))
            .max()
            .unwrap_or(0)
    }

    fn master_before(&self, ctx: &SyncContext, addr: u64) {
        let bucket = self.guards.bucket_for(addr);
        if super::push_record_guarded(
            &self.guards,
            bucket,
            &self.ring,
            &self.waiter,
            |tally| self.stats.count_master_wait(ctx.thread, tally),
            || self.is_poisoned(),
            || SyncRecord::simple(ctx.thread as u32, addr),
        ) {
            self.stats.count_record(ctx.thread);
        }
    }

    fn master_after(&self, _ctx: &SyncContext, addr: u64) {
        self.guards.release(self.guards.bucket_for(addr));
    }

    /// Whether the unconsumed head of the recording belongs to `thread`.
    fn head_is_mine(&self, slave: usize, thread: u32) -> bool {
        let pos = self.ring.reader_pos(slave);
        matches!(self.ring.get(pos), Some(rec) if rec.thread == thread)
    }

    fn slave_before(&self, ctx: &SyncContext, slave: usize) {
        let my_thread = ctx.thread as u32;
        // The head moves on a master push or another slave thread's reader
        // advance; both post the ring's event count.
        let tally = self.waiter.wait_until_event(self.ring.events(), || {
            self.is_poisoned() || self.head_is_mine(slave, my_thread)
        });
        if !self.head_is_mine(slave, my_thread) {
            // Poisoned bail-out: nothing was claimed; `slave_after` will see
            // a foreign (or absent) head record and leave the cursor alone.
            return;
        }
        self.stats.count_slave_wait(ctx.thread, tally);
        self.stats.count_replay(ctx.thread);
    }

    fn slave_after(&self, ctx: &SyncContext, slave: usize) {
        if self.is_poisoned() && !self.head_is_mine(slave, ctx.thread as u32) {
            return;
        }
        self.ring.advance_reader(slave);
    }
}

impl SyncAgent for TotalOrderAgent {
    fn kind(&self) -> AgentKind {
        AgentKind::TotalOrder
    }

    fn before_sync_op(&self, ctx: &SyncContext, addr: u64) {
        // Replication point: flush deferred work before any guard is taken.
        self.hook.sync_op(ctx, &self.stats);
        match ctx.role {
            VariantRole::Master => self.master_before(ctx, addr),
            VariantRole::Slave { index } => self.slave_before(ctx, index),
        }
    }

    fn after_sync_op(&self, ctx: &SyncContext, addr: u64) {
        match ctx.role {
            VariantRole::Master => self.master_after(ctx, addr),
            VariantRole::Slave { index } => self.slave_after(ctx, index),
        }
    }

    fn stats(&self) -> AgentStats {
        let mut stats = self.stats.snapshot();
        stats.cursor_rescans = self.ring.rescans();
        stats
    }

    fn lane_stats(&self, lane: usize) -> AgentStats {
        self.stats.lane_snapshot(lane)
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        // Unpark masters waiting on buffer space and slaves waiting for
        // their turn at the head.
        self.ring.events().notify_all();
        self.hook.poisoned();
    }

    fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    fn set_replication_hook(&self, hook: crate::ReplicationHook) {
        self.hook.install(hook);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_sync_op;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn config() -> AgentConfig {
        AgentConfig::default()
            .with_variants(2)
            .with_threads(2)
            .with_buffer_capacity(256)
    }

    #[test]
    fn master_records_are_replayed_in_identical_order() {
        let agent = Arc::new(TotalOrderAgent::new(config()));
        let addresses = [0x1000u64, 0x2000, 0x1000, 0x3000, 0x2000];

        // Master thread 0 records five ops.
        let master = SyncContext::new(VariantRole::Master, 0);
        for &addr in &addresses {
            with_sync_op(agent.as_ref(), &master, addr, || {});
        }

        // Slave thread 0 replays them; none of them should stall because the
        // slave is the only thread and the order matches.
        let slave = SyncContext::new(VariantRole::Slave { index: 0 }, 0);
        for &addr in &addresses {
            with_sync_op(agent.as_ref(), &slave, addr, || {});
        }

        let s = agent.stats();
        assert_eq!(s.ops_recorded, 5);
        assert_eq!(s.ops_replayed, 5);
        assert_eq!(agent.max_backlog(), 0);
    }

    #[test]
    fn slave_thread_stalls_until_other_thread_catches_up() {
        // Master order: thread 0 then thread 1.  In the slave, thread 1
        // arrives first and must stall until thread 0 has replayed its op —
        // the Figure 4a scenario.
        let agent = Arc::new(TotalOrderAgent::new(config()));
        let m0 = SyncContext::new(VariantRole::Master, 0);
        let m1 = SyncContext::new(VariantRole::Master, 1);
        with_sync_op(agent.as_ref(), &m0, 0xa000, || {});
        with_sync_op(agent.as_ref(), &m1, 0xb000, || {});

        let order = Arc::new(AtomicU64::new(0));

        let a1 = Arc::clone(&agent);
        let order1 = Arc::clone(&order);
        let slave_t1 = std::thread::spawn(move || {
            let ctx = SyncContext::new(VariantRole::Slave { index: 0 }, 1);
            with_sync_op(a1.as_ref(), &ctx, 0xbb00, || {
                order1.fetch_add(1, Ordering::SeqCst)
            })
        });

        // Give thread 1 a head start so it reaches its sync op first.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(order.load(Ordering::SeqCst), 0, "slave t1 must be stalled");

        let a0 = Arc::clone(&agent);
        let order0 = Arc::clone(&order);
        let slave_t0 = std::thread::spawn(move || {
            let ctx = SyncContext::new(VariantRole::Slave { index: 0 }, 0);
            with_sync_op(a0.as_ref(), &ctx, 0xaa00, || {
                order0.fetch_add(1, Ordering::SeqCst)
            })
        });

        let first = slave_t0.join().unwrap();
        let second = slave_t1.join().unwrap();
        assert_eq!(first, 0, "thread 0 executed first");
        assert_eq!(second, 1, "thread 1 executed second");
        assert!(agent.stats().slave_stalls >= 1);
    }

    #[test]
    fn multiple_slaves_consume_independently() {
        let cfg = AgentConfig::default()
            .with_variants(3)
            .with_threads(1)
            .with_buffer_capacity(64);
        let agent = TotalOrderAgent::new(cfg);
        let master = SyncContext::new(VariantRole::Master, 0);
        for i in 0..10u64 {
            with_sync_op(&agent, &master, 0x1000 + i * 8, || {});
        }
        let s0 = SyncContext::new(VariantRole::Slave { index: 0 }, 0);
        for i in 0..10u64 {
            with_sync_op(&agent, &s0, 0x1000 + i * 8, || {});
        }
        // Slave 1 has not consumed anything yet.
        assert_eq!(agent.max_backlog(), 10);
        let s1 = SyncContext::new(VariantRole::Slave { index: 1 }, 0);
        for i in 0..10u64 {
            with_sync_op(&agent, &s1, 0x1000 + i * 8, || {});
        }
        assert_eq!(agent.max_backlog(), 0);
        assert_eq!(agent.stats().ops_replayed, 20);
    }

    #[test]
    fn concurrent_master_threads_preserve_per_variable_order() {
        // Two master threads hammer the same variable; the recorded order
        // must match the actual execution order of the protected increments.
        let agent = Arc::new(TotalOrderAgent::new(
            AgentConfig::default()
                .with_variants(2)
                .with_threads(2)
                .with_buffer_capacity(4096),
        ));
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..2usize {
            let agent = Arc::clone(&agent);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let ctx = SyncContext::new(VariantRole::Master, t);
                for _ in 0..500 {
                    with_sync_op(agent.as_ref(), &ctx, 0xc000, || {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 1000);
        assert_eq!(agent.stats().ops_recorded, 1000);
    }
}
