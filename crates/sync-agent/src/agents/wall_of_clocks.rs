//! The wall-of-clocks (WoC) replication agent — the paper's novel design.
//!
//! Key ideas (§4.5, Figure 4c):
//!
//! * Every synchronization variable is assigned — by hashing its address — to
//!   one of a fixed number of logical clocks (the "wall of clocks").
//! * The master records, for each sync op, the identifier of the variable's
//!   clock and that clock's current time, then increments the clock.
//! * There is **one sync buffer per master thread**, so each buffer has a
//!   single producer and the master threads never contend on a shared write
//!   cursor.
//! * Slaves keep their own private copies of the clock wall.  A slave thread
//!   pops the next `(clock, time)` pair from its buffer, waits until its
//!   variant's copy of that clock has reached the recorded time, executes the
//!   op, and then increments the clock — thereby releasing any other slave
//!   thread waiting on a later time of the same clock.
//!
//! Because the clocks only couple threads that were *already* contending for
//! the same variables, the agent adds coherence traffic only where the
//! original program already had it.  The price of the fixed wall is false
//! serialization when two unrelated variables hash onto the same clock; the
//! [`AgentStats::clock_collisions`](crate::stats::AgentStats) counter and the
//! `ablation_clocks` benchmark quantify that effect.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::clockwall::ClockWall;
use crate::context::{AgentConfig, SyncContext, VariantRole};
use crate::guards::{GuardTable, Waiter};
use crate::ring::{RecordRing, SyncRecord};
use crate::stats::{AgentStats, SharedStats};
use crate::SyncAgent;

use super::AgentKind;

/// Wall-of-clocks replication agent.
#[derive(Debug)]
pub struct WallOfClocksAgent {
    config: AgentConfig,
    /// One ring per master thread (single producer each).
    rings: Vec<RecordRing>,
    /// The master variant's clock wall.
    master_wall: ClockWall,
    /// One private clock wall per slave variant.
    slave_walls: Vec<ClockWall>,
    /// Per-clock guards that keep "record, execute, tick" atomic on the
    /// master side for ops sharing a clock.
    guards: GuardTable,
    waiter: Waiter,
    stats: SharedStats,
    poisoned: AtomicBool,
    hook: super::HookCell,
}

impl WallOfClocksAgent {
    /// Creates a wall-of-clocks agent for `config.variants` variants.
    ///
    /// Each of the `config.threads` rings has exactly one producer — master
    /// thread `t` writes only to ring `t` (§4.5) — so all rings take the
    /// CAS-free single-producer fast path, **except** the last one:
    /// [`ring_for`](Self::ring_for) clamps out-of-range thread indices onto
    /// it, so a misconfigured run (more live threads than
    /// `config.threads`) funnels several producers into that ring and it
    /// must stay multi-producer-safe.
    pub fn new(config: AgentConfig) -> Self {
        let readers = config.slave_count().max(1);
        let waiter = config.waiter();
        WallOfClocksAgent {
            rings: (0..config.threads)
                .map(|t| {
                    if t + 1 == config.threads {
                        RecordRing::new(config.buffer_capacity, readers)
                    } else {
                        RecordRing::new_spsc(config.buffer_capacity, readers)
                    }
                })
                .collect(),
            master_wall: ClockWall::new(config.clock_count),
            slave_walls: (0..readers)
                .map(|_| ClockWall::new(config.clock_count))
                .collect(),
            // One guard per clock so the guard index equals the clock index.
            guards: GuardTable::with_waiter(config.clock_count, waiter),
            waiter,
            stats: SharedStats::new(),
            poisoned: AtomicBool::new(false),
            hook: super::HookCell::new(),
            config,
        }
    }

    /// The agent's sizing configuration.
    pub fn config(&self) -> &AgentConfig {
        &self.config
    }

    /// Number of logical clocks in the wall.
    pub fn clock_count(&self) -> usize {
        self.master_wall.len()
    }

    /// Total ticks applied to the master's wall (equals recorded ops).
    pub fn master_ticks(&self) -> u64 {
        self.master_wall.total_ticks()
    }

    fn ring_for(&self, thread: usize) -> &RecordRing {
        &self.rings[thread.min(self.rings.len() - 1)]
    }

    fn master_before(&self, ctx: &SyncContext, addr: u64) {
        let clock = self.master_wall.clock_for(addr);
        let ring = self.ring_for(ctx.thread);
        // The record's time must be read under the clock guard, so the
        // record is built inside the shared push loop's guarded section.
        if super::push_record_guarded(
            &self.guards,
            clock,
            ring,
            &self.waiter,
            |tally| self.stats.count_master_wait(ctx.thread, tally),
            || self.is_poisoned(),
            || {
                let time = self.master_wall.time(clock);
                SyncRecord::with_clock(ctx.thread as u32, addr, clock as u32, time)
            },
        ) {
            if self.master_wall.note_address(clock, addr) {
                self.stats.count_clock_collision(ctx.thread);
            }
            self.stats.count_record(ctx.thread);
        }
    }

    fn master_after(&self, _ctx: &SyncContext, addr: u64) {
        let clock = self.master_wall.clock_for(addr);
        self.master_wall.tick(clock);
        self.guards.release(clock);
    }

    fn slave_before(&self, ctx: &SyncContext, slave: usize) {
        let ring = self.ring_for(ctx.thread);
        let pos = ring.reader_pos(slave);
        // Wait 1: the master publishes the record (ring pushes post the
        // ring's event count).
        let waited_publish = self.waiter.wait_until_event(ring.events(), || {
            self.is_poisoned() || ring.get(pos).is_some()
        });
        let Some(record) = ring.get(pos) else {
            // Poisoned bail-out: the master stopped recording; `slave_after`
            // sees the absent record and leaves the replay state untouched.
            return;
        };
        let clock = record.clock as usize;
        // Wait 2: this variant's clock copy reaches the recorded time
        // (slave ticks post the wall's event count).
        let wall = &self.slave_walls[slave];
        let waited_clock = self.waiter.wait_until_event(wall.events(), || {
            self.is_poisoned() || wall.time(clock) >= record.time
        });
        let mut tally = waited_publish;
        tally.merge(waited_clock);
        self.stats.count_slave_wait(ctx.thread, tally);
        self.stats.count_replay(ctx.thread);
    }

    fn slave_after(&self, ctx: &SyncContext, slave: usize) {
        let ring = self.ring_for(ctx.thread);
        let pos = ring.reader_pos(slave);
        let record = match ring.get(pos) {
            Some(record) => record,
            None => {
                debug_assert!(
                    self.is_poisoned(),
                    "after_sync_op called without a pending record"
                );
                return;
            }
        };
        self.slave_walls[slave].tick(record.clock as usize);
        ring.advance_reader(slave);
    }
}

impl SyncAgent for WallOfClocksAgent {
    fn kind(&self) -> AgentKind {
        AgentKind::WallOfClocks
    }

    fn before_sync_op(&self, ctx: &SyncContext, addr: u64) {
        // Replication point: flush deferred work before any guard is taken.
        self.hook.sync_op(ctx, &self.stats);
        match ctx.role {
            VariantRole::Master => self.master_before(ctx, addr),
            VariantRole::Slave { index } => self.slave_before(ctx, index),
        }
    }

    fn after_sync_op(&self, ctx: &SyncContext, addr: u64) {
        match ctx.role {
            VariantRole::Master => self.master_after(ctx, addr),
            VariantRole::Slave { index } => self.slave_after(ctx, index),
        }
    }

    fn stats(&self) -> AgentStats {
        let mut stats = self.stats.snapshot();
        stats.cursor_rescans = self.rings.iter().map(RecordRing::rescans).sum();
        stats
    }

    fn lane_stats(&self, lane: usize) -> AgentStats {
        self.stats.lane_snapshot(lane)
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        // Unpark every adaptively parked waiter (masters on full rings,
        // slaves on publication or clock waits) so the bail-out conditions
        // are re-checked promptly.
        for ring in &self.rings {
            ring.events().notify_all();
        }
        for wall in &self.slave_walls {
            wall.events().notify_all();
        }
        self.hook.poisoned();
    }

    fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    fn set_replication_hook(&self, hook: crate::ReplicationHook) {
        self.hook.install(hook);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_sync_op;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn config() -> AgentConfig {
        AgentConfig::default()
            .with_variants(2)
            .with_threads(2)
            .with_buffer_capacity(512)
            .with_clock_count(64)
    }

    #[test]
    fn single_thread_record_and_replay() {
        let agent = WallOfClocksAgent::new(config());
        let master = SyncContext::new(VariantRole::Master, 0);
        let addrs = [0x1000u64, 0x2000, 0x1000, 0x1000, 0x3000];
        for &a in &addrs {
            with_sync_op(&agent, &master, a, || {});
        }
        assert_eq!(agent.master_ticks(), 5);

        let slave = SyncContext::new(VariantRole::Slave { index: 0 }, 0);
        for &a in &addrs {
            with_sync_op(&agent, &slave, a, || {});
        }
        let s = agent.stats();
        assert_eq!(s.ops_recorded, 5);
        assert_eq!(s.ops_replayed, 5);
        assert_eq!(agent.slave_walls[0].total_ticks(), 5);
    }

    #[test]
    fn unrelated_locks_replay_without_cross_thread_stalls() {
        // The Figure 4c scenario: thread 1 uses lock A, thread 2 uses lock B,
        // the slave schedules thread 2 first — it must proceed immediately.
        let cfg = config().with_clock_count(4096);
        let agent = Arc::new(WallOfClocksAgent::new(cfg));
        let m0 = SyncContext::new(VariantRole::Master, 0);
        let m1 = SyncContext::new(VariantRole::Master, 1);
        // Choose addresses that map to different clocks.
        let addr_a = 0xA000u64;
        let mut addr_b = 0xB000u64;
        while agent.master_wall.clock_for(addr_b) == agent.master_wall.clock_for(addr_a) {
            addr_b += 8;
        }
        with_sync_op(agent.as_ref(), &m0, addr_a, || {});
        with_sync_op(agent.as_ref(), &m0, addr_a, || {});
        with_sync_op(agent.as_ref(), &m1, addr_b, || {});
        with_sync_op(agent.as_ref(), &m1, addr_b, || {});

        // Slave thread 1 replays first, without thread 0 running at all.
        let done = Arc::new(AtomicU64::new(0));
        let a = Arc::clone(&agent);
        let d = Arc::clone(&done);
        let t = std::thread::spawn(move || {
            let ctx = SyncContext::new(VariantRole::Slave { index: 0 }, 1);
            with_sync_op(a.as_ref(), &ctx, 0xBB00, || {
                d.fetch_add(1, Ordering::SeqCst)
            });
            with_sync_op(a.as_ref(), &ctx, 0xBB00, || {
                d.fetch_add(1, Ordering::SeqCst)
            });
        });
        t.join().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 2);

        let ctx0 = SyncContext::new(VariantRole::Slave { index: 0 }, 0);
        with_sync_op(agent.as_ref(), &ctx0, 0xAA00, || {});
        with_sync_op(agent.as_ref(), &ctx0, 0xAA00, || {});
        assert_eq!(agent.stats().ops_replayed, 4);
    }

    #[test]
    fn shared_lock_order_is_enforced_across_slave_threads() {
        // Master: thread 0 acquires the shared lock before thread 1.  In the
        // slave, thread 1 arrives first and must wait until thread 0 has
        // replayed its op and ticked the shared clock.
        let agent = Arc::new(WallOfClocksAgent::new(config()));
        let m0 = SyncContext::new(VariantRole::Master, 0);
        let m1 = SyncContext::new(VariantRole::Master, 1);
        let lock = 0xC000u64;
        with_sync_op(agent.as_ref(), &m0, lock, || {});
        with_sync_op(agent.as_ref(), &m1, lock, || {});

        let order = Arc::new(AtomicU64::new(0));
        let a1 = Arc::clone(&agent);
        let o1 = Arc::clone(&order);
        let t1 = std::thread::spawn(move || {
            let ctx = SyncContext::new(VariantRole::Slave { index: 0 }, 1);
            with_sync_op(a1.as_ref(), &ctx, 0xCC00, || {
                o1.fetch_add(1, Ordering::SeqCst)
            })
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(order.load(Ordering::SeqCst), 0, "slave thread 1 must stall");

        let a0 = Arc::clone(&agent);
        let o0 = Arc::clone(&order);
        let t0 = std::thread::spawn(move || {
            let ctx = SyncContext::new(VariantRole::Slave { index: 0 }, 0);
            with_sync_op(a0.as_ref(), &ctx, 0xCC00, || {
                o0.fetch_add(1, Ordering::SeqCst)
            })
        });
        assert_eq!(t0.join().unwrap(), 0);
        assert_eq!(t1.join().unwrap(), 1);
        assert!(agent.stats().slave_stalls >= 1);
    }

    #[test]
    fn per_thread_rings_take_the_spsc_fast_path() {
        // Every master thread's private ring is single-producer; only the
        // last ring (the clamp sink for out-of-range thread indices) stays
        // multi-producer-safe.
        let agent = WallOfClocksAgent::new(config().with_threads(4));
        assert_eq!(agent.rings.len(), 4);
        assert!(agent.rings[..3].iter().all(|r| r.is_spsc()));
        assert!(!agent.rings[3].is_spsc());
    }

    #[test]
    fn collisions_are_detected_with_a_tiny_wall() {
        let cfg = config().with_clock_count(1);
        let agent = WallOfClocksAgent::new(cfg);
        let master = SyncContext::new(VariantRole::Master, 0);
        with_sync_op(&agent, &master, 0x1000, || {});
        with_sync_op(&agent, &master, 0x9000, || {});
        assert!(agent.stats().clock_collisions >= 1);
    }

    #[test]
    fn multiple_slaves_replay_the_same_recording() {
        let cfg = AgentConfig::default()
            .with_variants(4)
            .with_threads(1)
            .with_buffer_capacity(256)
            .with_clock_count(32);
        let agent = WallOfClocksAgent::new(cfg);
        let master = SyncContext::new(VariantRole::Master, 0);
        for i in 0..20u64 {
            with_sync_op(&agent, &master, 0x4000 + (i % 3) * 8, || {});
        }
        for slave in 0..3usize {
            let ctx = SyncContext::new(VariantRole::Slave { index: slave }, 0);
            for i in 0..20u64 {
                with_sync_op(&agent, &ctx, 0x5000 + (i % 3) * 8, || {});
            }
        }
        let s = agent.stats();
        assert_eq!(s.ops_recorded, 20);
        assert_eq!(s.ops_replayed, 60);
    }

    #[test]
    fn concurrent_hammering_on_shared_and_private_locks_completes() {
        let cfg = AgentConfig::default()
            .with_variants(2)
            .with_threads(4)
            .with_buffer_capacity(2048)
            .with_clock_count(128);
        let agent = Arc::new(WallOfClocksAgent::new(cfg));
        let per_thread = 300u64;
        let counter = Arc::new(AtomicU64::new(0));

        let mut handles = Vec::new();
        for t in 0..4usize {
            let agent = Arc::clone(&agent);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let ctx = SyncContext::new(VariantRole::Master, t);
                for i in 0..per_thread {
                    let addr = if i % 4 == 0 {
                        0xF000
                    } else {
                        0x1_0000 + (t as u64) * 64
                    };
                    with_sync_op(agent.as_ref(), &ctx, addr, || {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }

        let mut handles = Vec::new();
        for t in 0..4usize {
            let agent = Arc::clone(&agent);
            handles.push(std::thread::spawn(move || {
                let ctx = SyncContext::new(VariantRole::Slave { index: 0 }, t);
                for i in 0..per_thread {
                    let addr = if i % 4 == 0 {
                        0xF100
                    } else {
                        0x2_0000 + (t as u64) * 64
                    };
                    with_sync_op(agent.as_ref(), &ctx, addr, || {});
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }

        let s = agent.stats();
        assert_eq!(counter.load(Ordering::Relaxed), 4 * per_thread);
        assert_eq!(s.ops_recorded, 4 * per_thread);
        assert_eq!(s.ops_replayed, 4 * per_thread);
        assert_eq!(agent.master_ticks(), 4 * per_thread);
    }
}
