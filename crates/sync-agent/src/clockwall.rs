//! The wall of logical clocks used by the wall-of-clocks agent.
//!
//! The paper's WoC agent cannot give every synchronization variable its own
//! clock because the agent may not allocate memory dynamically (§3.3, §4.5).
//! Instead it pre-allocates a fixed number of clocks and assigns each
//! variable to a clock by hashing its address.  Hash collisions map unrelated
//! variables onto the same clock, which introduces false serialization — a
//! cost the paper accepts and that the ablation benchmarks in this
//! reproduction measure explicitly.
//!
//! A [`ClockWall`] is used in two places: the master variant owns one wall
//! whose times are recorded into the per-thread sync buffers, and every slave
//! variant owns a private copy whose times are advanced as ops are replayed
//! (§4.5: "the master's logical clocks do not need to be visible to the
//! slaves").

use std::sync::atomic::{AtomicU64, Ordering};

use crate::guards::{fnv1a_u64, EventCount};

/// A fixed array of logical clocks.
#[derive(Debug)]
pub struct ClockWall {
    clocks: Vec<AtomicU64>,
    /// Last address observed on each clock, used to count collisions
    /// (two *different* addresses mapping to the same clock).
    last_addr: Vec<AtomicU64>,
    /// Parking target for threads waiting on a clock time; posted on every
    /// tick.  Shared by all clocks of the wall: wakes are rare (only parked
    /// waiters pay), while a per-clock condvar would bloat the wall.
    events: EventCount,
}

impl ClockWall {
    /// Creates a wall with `count` clocks, all at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn new(count: usize) -> Self {
        assert!(count > 0, "clock wall needs at least one clock");
        ClockWall {
            clocks: (0..count).map(|_| AtomicU64::new(0)).collect(),
            last_addr: (0..count).map(|_| AtomicU64::new(0)).collect(),
            events: EventCount::new(),
        }
    }

    /// The wall's parking target: posted on every tick (and by the agents
    /// on poison).
    pub fn events(&self) -> &EventCount {
        &self.events
    }

    /// Number of clocks.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// Whether the wall has no clocks (never true; see [`ClockWall::new`]).
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// Maps a synchronization-variable address to a clock index.
    ///
    /// Addresses are aligned down to 8 bytes first: two adjacent 32-bit sync
    /// variables sharing a 64-bit word are deliberately assigned to the same
    /// clock because a single `CMPXCHG8B` instruction could modify both
    /// (§4.5).
    pub fn clock_for(&self, addr: u64) -> usize {
        let aligned = addr & !7;
        (fnv1a_u64(aligned) % self.clocks.len() as u64) as usize
    }

    /// Current time of clock `id`.
    pub fn time(&self, id: usize) -> u64 {
        self.clocks[id].load(Ordering::Acquire)
    }

    /// Advances clock `id` by one tick and returns the *previous* time.
    pub fn tick(&self, id: usize) -> u64 {
        let prev = self.clocks[id].fetch_add(1, Ordering::AcqRel);
        self.events.notify();
        prev
    }

    /// Records that `addr` was just assigned to clock `id`; returns `true`
    /// when a *different* address had used this clock before (a collision).
    pub fn note_address(&self, id: usize, addr: u64) -> bool {
        let aligned = addr & !7;
        let prev = self.last_addr[id].swap(aligned, Ordering::Relaxed);
        prev != 0 && prev != aligned
    }

    /// Sum of all clock times (equals the number of ticks ever applied).
    pub fn total_ticks(&self) -> u64 {
        self.clocks.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Resets every clock to zero (between benchmark iterations).
    pub fn reset(&self) {
        for c in &self.clocks {
            c.store(0, Ordering::Release);
        }
        for a in &self.last_addr {
            a.store(0, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn clocks_start_at_zero_and_tick() {
        let wall = ClockWall::new(8);
        assert_eq!(wall.time(3), 0);
        assert_eq!(wall.tick(3), 0);
        assert_eq!(wall.tick(3), 1);
        assert_eq!(wall.time(3), 2);
        assert_eq!(wall.total_ticks(), 2);
    }

    #[test]
    fn clock_assignment_is_deterministic_and_word_aligned() {
        let wall = ClockWall::new(64);
        assert_eq!(wall.clock_for(0x7f00_1000), wall.clock_for(0x7f00_1000));
        // Adjacent 32-bit halves of one 64-bit word share a clock.
        assert_eq!(wall.clock_for(0x7f00_1000), wall.clock_for(0x7f00_1004));
    }

    #[test]
    fn different_addresses_can_share_a_clock_when_wall_is_small() {
        // With a single clock every address collides — the degenerate case
        // the ablation bench sweeps towards.
        let wall = ClockWall::new(1);
        assert_eq!(wall.clock_for(0x1000), 0);
        assert_eq!(wall.clock_for(0x2000), 0);
        assert!(!wall.note_address(0, 0x1000));
        assert!(wall.note_address(0, 0x2000));
    }

    #[test]
    fn note_address_does_not_flag_repeat_use() {
        let wall = ClockWall::new(4);
        let id = wall.clock_for(0x3000);
        assert!(!wall.note_address(id, 0x3000));
        assert!(!wall.note_address(id, 0x3000));
        assert!(!wall.note_address(id, 0x3004)); // same 64-bit word
    }

    #[test]
    fn wait_for_blocks_until_tick() {
        // A waiter parked on the wall's event count (the way the WoC
        // agent's slave clock wait uses it) is released by ticks.
        let wall = Arc::new(ClockWall::new(4));
        let w2 = Arc::clone(&wall);
        let handle = std::thread::spawn(move || {
            let waiter = crate::guards::Waiter::new(16);
            waiter.wait_until_event(w2.events(), || w2.time(2) >= 3)
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        wall.tick(2);
        wall.tick(2);
        wall.tick(2);
        handle.join().unwrap();
        assert!(wall.time(2) >= 3);
    }

    #[test]
    fn reset_zeroes_all_clocks() {
        let wall = ClockWall::new(4);
        wall.tick(0);
        wall.tick(1);
        wall.note_address(0, 0x1000);
        wall.reset();
        assert_eq!(wall.total_ticks(), 0);
        assert!(!wall.note_address(0, 0x2000));
    }

    #[test]
    #[should_panic(expected = "at least one clock")]
    fn zero_clocks_panics() {
        let _ = ClockWall::new(0);
    }
}
