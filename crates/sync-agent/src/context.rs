//! Agent configuration, variant roles and per-thread contexts.

use serde::{Deserialize, Serialize};

use crate::guards::{WaitStrategy, Waiter};

/// Maximum number of logical threads an agent supports.
///
/// The paper's agents may not allocate dynamically (§3.3), so per-thread
/// buffers are pre-allocated for a fixed number of threads.  The evaluation
/// uses 4 worker threads; nginx spawns a 32-thread pool; 64 leaves headroom.
pub const MAX_THREADS: usize = 64;

/// Maximum number of variants (1 master + up to 15 slaves).
pub const MAX_VARIANTS: usize = 16;

/// The role a variant plays in the replication scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VariantRole {
    /// The master (leader) variant: records the order of its sync ops.
    Master,
    /// A slave (follower) variant: replays the recorded order.
    /// The index is zero-based among slaves (slave 0 is the second variant).
    Slave {
        /// Zero-based index of this slave.
        index: usize,
    },
}

impl VariantRole {
    /// Whether this is the master role.
    pub fn is_master(self) -> bool {
        matches!(self, VariantRole::Master)
    }

    /// Returns the slave index, if this is a slave.
    pub fn slave_index(self) -> Option<usize> {
        match self {
            VariantRole::Master => None,
            VariantRole::Slave { index } => Some(index),
        }
    }

    /// Builds a role from a variant index: variant 0 is the master, variant
    /// `i > 0` is slave `i - 1`.
    pub fn from_variant_index(index: usize) -> Self {
        if index == 0 {
            VariantRole::Master
        } else {
            VariantRole::Slave { index: index - 1 }
        }
    }

    /// The inverse of [`from_variant_index`](Self::from_variant_index): the
    /// variant index this role plays (master = 0, slave `k` = `k + 1`).
    pub fn variant_index(self) -> usize {
        match self {
            VariantRole::Master => 0,
            VariantRole::Slave { index } => index + 1,
        }
    }
}

/// Per-thread context handed to the agent on every call.
///
/// The `thread` index is the *logical* thread index, assigned identically in
/// every variant (thread 0 is the initial thread, thread `k` is the k-th
/// spawned worker).  This is what gives the agents their positional
/// correspondence across diversified variants (§4.5.1): the n-th sync op of
/// master thread `k` corresponds to the n-th sync op of slave thread `k`,
/// regardless of what addresses the variables have in each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncContext {
    /// The variant's role.
    pub role: VariantRole,
    /// Logical thread index within the variant.
    pub thread: usize,
}

impl SyncContext {
    /// Creates a context.
    ///
    /// # Panics
    ///
    /// Panics if `thread` exceeds [`MAX_THREADS`]; the agents pre-allocate
    /// per-thread state and cannot grow it at run time.
    pub fn new(role: VariantRole, thread: usize) -> Self {
        assert!(
            thread < MAX_THREADS,
            "thread index {thread} exceeds MAX_THREADS ({MAX_THREADS})"
        );
        SyncContext { role, thread }
    }
}

/// Agent sizing and behaviour knobs, fixed at construction time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgentConfig {
    /// Total number of variants (master + slaves).  Must be at least 1.
    pub variants: usize,
    /// Number of logical threads the workload uses (≤ [`MAX_THREADS`]).
    pub threads: usize,
    /// Capacity, in records, of each sync buffer.  Must be a power of two.
    pub buffer_capacity: usize,
    /// Number of logical clocks in the wall-of-clocks agent.
    pub clock_count: usize,
    /// Number of ordering guard buckets used on the master side.
    pub guard_buckets: usize,
    /// Size of the look-ahead window the partial-order agent scans.
    pub lookahead_window: usize,
    /// How many spin iterations a waiting thread performs before yielding to
    /// the OS scheduler.
    pub spin_before_yield: u32,
    /// How blocked agent threads wait: the legacy fixed spin/yield loop or
    /// the adaptive spin → yield → park escalation (the default).
    pub wait: WaitStrategy,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            variants: 2,
            threads: 4,
            buffer_capacity: 4096,
            clock_count: 512,
            guard_buckets: 512,
            lookahead_window: 256,
            spin_before_yield: 64,
            wait: WaitStrategy::Adaptive,
        }
    }
}

impl AgentConfig {
    /// Sets the number of variants (builder style).
    pub fn with_variants(mut self, variants: usize) -> Self {
        assert!(
            (1..=MAX_VARIANTS).contains(&variants),
            "variant count must be in 1..={MAX_VARIANTS}"
        );
        self.variants = variants;
        self
    }

    /// Sets the number of worker threads (builder style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(
            (1..=MAX_THREADS).contains(&threads),
            "thread count must be in 1..={MAX_THREADS}"
        );
        self.threads = threads;
        self
    }

    /// Sets the per-buffer capacity (builder style).  Must be a power of two.
    pub fn with_buffer_capacity(mut self, capacity: usize) -> Self {
        assert!(
            capacity.is_power_of_two(),
            "capacity must be a power of two"
        );
        self.buffer_capacity = capacity;
        self
    }

    /// Sets the number of logical clocks (builder style).
    pub fn with_clock_count(mut self, clocks: usize) -> Self {
        assert!(clocks > 0, "clock count must be positive");
        self.clock_count = clocks;
        self
    }

    /// Sets the look-ahead window of the partial-order agent (builder style).
    pub fn with_lookahead_window(mut self, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        self.lookahead_window = window;
        self
    }

    /// Sets the wait strategy blocked threads use (builder style).
    /// [`WaitStrategy::SpinYield`] restores the pre-adaptive behaviour for
    /// ablation runs.
    pub fn with_wait_strategy(mut self, wait: WaitStrategy) -> Self {
        self.wait = wait;
        self
    }

    /// The waiter this configuration prescribes.
    pub fn waiter(&self) -> Waiter {
        Waiter::with_strategy(self.spin_before_yield, self.wait)
    }

    /// Number of slave variants.
    pub fn slave_count(&self) -> usize {
        self.variants.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_from_variant_index() {
        assert_eq!(VariantRole::from_variant_index(0), VariantRole::Master);
        assert_eq!(
            VariantRole::from_variant_index(1),
            VariantRole::Slave { index: 0 }
        );
        assert_eq!(
            VariantRole::from_variant_index(3),
            VariantRole::Slave { index: 2 }
        );
    }

    #[test]
    fn role_predicates() {
        assert!(VariantRole::Master.is_master());
        assert_eq!(VariantRole::Master.slave_index(), None);
        assert_eq!(VariantRole::Slave { index: 2 }.slave_index(), Some(2));
    }

    #[test]
    fn variant_index_round_trips() {
        for i in 0..MAX_VARIANTS {
            assert_eq!(VariantRole::from_variant_index(i).variant_index(), i);
        }
    }

    #[test]
    fn default_config_is_sane() {
        let c = AgentConfig::default();
        assert_eq!(c.variants, 2);
        assert_eq!(c.slave_count(), 1);
        assert!(c.buffer_capacity.is_power_of_two());
        assert!(c.clock_count > 0);
    }

    #[test]
    fn config_builders_apply() {
        let c = AgentConfig::default()
            .with_variants(4)
            .with_threads(8)
            .with_buffer_capacity(1024)
            .with_clock_count(64)
            .with_lookahead_window(32)
            .with_wait_strategy(WaitStrategy::SpinYield);
        assert_eq!(c.variants, 4);
        assert_eq!(c.slave_count(), 3);
        assert_eq!(c.threads, 8);
        assert_eq!(c.buffer_capacity, 1024);
        assert_eq!(c.clock_count, 64);
        assert_eq!(c.lookahead_window, 32);
        assert_eq!(c.wait, WaitStrategy::SpinYield);
        assert_eq!(c.waiter().strategy(), WaitStrategy::SpinYield);
    }

    #[test]
    fn default_wait_strategy_is_adaptive() {
        assert_eq!(AgentConfig::default().wait, WaitStrategy::Adaptive);
        assert_eq!(
            AgentConfig::default().waiter().strategy(),
            WaitStrategy::Adaptive
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_capacity_panics() {
        let _ = AgentConfig::default().with_buffer_capacity(1000);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_THREADS")]
    fn oversized_thread_index_panics() {
        let _ = SyncContext::new(VariantRole::Master, MAX_THREADS);
    }

    #[test]
    #[should_panic(expected = "variant count")]
    fn oversized_variant_count_panics() {
        let _ = AgentConfig::default().with_variants(MAX_VARIANTS + 1);
    }
}
