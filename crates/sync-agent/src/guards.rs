//! Spin guards, event counts and the adaptive waiting primitives used by the
//! agents.
//!
//! Two constraints shape this module.  First, the agents may not allocate
//! dynamically (§3.3 of the paper), so all guard state is a fixed-size array
//! sized at construction.  Second, the guards protect extremely short
//! critical sections (recording one sync op and executing one atomic
//! instruction), so waiting starts as a bounded spin — but a fixed
//! spin/yield loop collapses under oversubscription (more runnable threads
//! than cores): every spinning slave burns the time slice the thread it is
//! waiting for needs.  The adaptive [`Waiter`] therefore escalates
//! spin → exponential-backoff yield → park on an [`EventCount`] condvar,
//! while [`WaitStrategy::SpinYield`] preserves the original fixed loop for
//! ablation.

use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// How a blocked agent thread waits for its wake-up condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum WaitStrategy {
    /// The original wait discipline: spin `spin_before_yield` iterations,
    /// then `yield_now`, forever — never parks.  Cheap when the wait is
    /// short and the waited-on thread runs on another core; pathological
    /// when threads > cores.  (The surrounding event-count *notifications*
    /// are posted either way, so this is the old waiting behaviour on the
    /// new ring, not a bit-for-bit revert of the hot path.)
    SpinYield,
    /// Three phases: bounded spin, exponential-backoff yield, then park on
    /// the wait target's [`EventCount`] until a cursor advance (or poison)
    /// notifies it.  The default.
    #[default]
    Adaptive,
}

impl WaitStrategy {
    /// Short name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            WaitStrategy::SpinYield => "spin-yield",
            WaitStrategy::Adaptive => "adaptive",
        }
    }

    /// Both strategies, in ablation order (legacy first).
    pub fn all() -> [WaitStrategy; 2] {
        [WaitStrategy::SpinYield, WaitStrategy::Adaptive]
    }
}

/// Yields performed (with exponential backoff) before the first park.
///
/// Parking is only worth its condvar round-trip for *long* waits (a peer
/// descheduled or far behind); short replay waits resolve within a few
/// yields even on an oversubscribed core.  The budget is sized so the yield
/// phase lasts roughly a scheduling quantum before the waiter gives the
/// core up for good.
const YIELDS_BEFORE_PARK: u32 = 64;

/// Upper bound on one parking episode.  Parked threads are woken explicitly
/// by [`EventCount::notify`] on every cursor advance and on poison; the
/// timeout is a belt-and-braces backstop so that even a lost wake-up (or a
/// waiter whose condition depends on state with no notifier) degrades to a
/// 1 ms poll instead of a deadlock.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// A condvar-backed event count: the parking target of the adaptive waiter.
///
/// The fast path costs the *notifier* one seq-cst fence plus one load when
/// nobody is parked (the same unlock-side cost `parking_lot`'s word lock
/// pays) — cheap enough to call on every ring-cursor advance and clock
/// tick, and paid identically under both wait strategies, so the
/// `ablation_agent` comparison isolates the wait *discipline*, not the
/// notification accounting.  Waiters register (`waiters`), re-check their
/// condition, and only then block, the classic futex-style handshake:
/// either the notifier observes the registration and wakes, or the
/// waiter's re-check observes the notifier's state change.  Both sides are
/// ordered by seq-cst fences.
#[derive(Debug, Default)]
pub struct EventCount {
    /// Bumped on every delivered notification; waiters snapshot it before
    /// the final condition check so a wake between check and park is caught.
    epoch: AtomicU64,
    /// Number of threads registered to park (about to block or blocked).
    waiters: AtomicU64,
    lock: Mutex<()>,
    condvar: Condvar,
}

impl EventCount {
    /// Creates an event count with no waiters.
    pub fn new() -> Self {
        EventCount::default()
    }

    /// Whether any thread is currently registered to park.
    pub fn has_waiters(&self) -> bool {
        self.waiters.load(Ordering::SeqCst) > 0
    }

    /// Wakes every parked waiter if there are any.  The no-waiter fast path
    /// is one atomic load; hot paths (cursor advances, clock ticks) call
    /// this unconditionally.
    #[inline]
    pub fn notify(&self) {
        // Pairs with the seq-cst fence in `park` (after the waiter
        // registers): either this load sees the registration, or the
        // waiter's post-fence condition re-check sees the state change the
        // caller made before notifying.
        fence(Ordering::SeqCst);
        if self.waiters.load(Ordering::Relaxed) == 0 {
            return;
        }
        self.notify_slow();
    }

    /// Unconditional wake of every parked waiter (poison/shutdown path).
    pub fn notify_all(&self) {
        self.notify_slow();
    }

    #[cold]
    fn notify_slow(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        // Acquiring the lock orders this notification after any waiter that
        // already re-checked its epoch under the lock but has not yet
        // blocked: such a waiter is in the condvar queue by the time the
        // lock is free, so `notify_all` cannot miss it.
        drop(self.lock.lock().unwrap_or_else(|e| e.into_inner()));
        self.condvar.notify_all();
    }

    /// One parking episode: blocks until notified, `PARK_TIMEOUT` elapses,
    /// or `cond` already holds.  Returns `true` when `cond` held on entry
    /// (no park happened).
    fn park(&self, cond: &mut impl FnMut() -> bool) -> bool {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        // Pairs with the fence in `notify`; see there.
        fence(Ordering::SeqCst);
        let epoch = self.epoch.load(Ordering::SeqCst);
        if cond() {
            self.waiters.fetch_sub(1, Ordering::SeqCst);
            return true;
        }
        {
            let guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
            // A notification delivered between the condition check and the
            // lock acquisition bumped the epoch; skip the block and
            // re-evaluate.
            if self.epoch.load(Ordering::SeqCst) == epoch {
                let _ = self
                    .condvar
                    .wait_timeout(guard, PARK_TIMEOUT)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        false
    }
}

/// Where the iterations of one wait went: the stall taxonomy the agents
/// surface through [`AgentStats`](crate::stats::AgentStats).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WaitTally {
    /// Busy-spin iterations (`spin_loop` hint).
    pub spins: u64,
    /// `yield_now` calls.
    pub yields: u64,
    /// Parking episodes on an [`EventCount`].
    pub parks: u64,
}

impl WaitTally {
    /// Total wait iterations of any kind.
    ///
    /// The components are **not** time-commensurable — one park lasts up to
    /// 1 ms while one spin is nanoseconds — so this figure must not be
    /// compared across wait strategies.  Use it only as an episode count
    /// ("did we wait, and how many polls did it take"); strategy
    /// comparisons should read the three components separately, as
    /// [`AgentStats`](crate::stats::AgentStats) does.
    pub fn total(&self) -> u64 {
        self.spins + self.yields + self.parks
    }

    /// Folds another tally into this one (a wait made of several phases,
    /// e.g. the wall-of-clocks publish wait followed by its clock wait).
    pub fn merge(&mut self, other: WaitTally) {
        self.spins += other.spins;
        self.yields += other.yields;
        self.parks += other.parks;
    }

    /// Whether the wait did not succeed immediately.
    pub fn stalled(&self) -> bool {
        self.total() > 0
    }
}

/// A bounded waiter: spin, yield, and (adaptively) park.
///
/// Returns iteration tallies so callers can feed the agent statistics.
#[derive(Debug, Clone, Copy)]
pub struct Waiter {
    spin_before_yield: u32,
    strategy: WaitStrategy,
}

impl Default for Waiter {
    /// The default spin budget (64 iterations per yield) with the legacy
    /// spin/yield discipline, used by the monitor wait paths (which have no
    /// event count to park on).
    fn default() -> Self {
        Waiter::new(64)
    }
}

impl Waiter {
    /// Creates a legacy spin/yield waiter with the given spin budget per
    /// yield.  Existing callers (the monitor, guard-free waits) keep the
    /// pre-adaptive behaviour.
    pub fn new(spin_before_yield: u32) -> Self {
        Waiter {
            spin_before_yield,
            strategy: WaitStrategy::SpinYield,
        }
    }

    /// Creates a waiter with an explicit strategy; agents build theirs from
    /// [`AgentConfig`](crate::context::AgentConfig) this way.
    pub fn with_strategy(spin_before_yield: u32, strategy: WaitStrategy) -> Self {
        Waiter {
            spin_before_yield,
            strategy,
        }
    }

    /// The configured strategy.
    pub fn strategy(&self) -> WaitStrategy {
        self.strategy
    }

    /// Spins until `cond` returns `true`; returns the number of wait
    /// iterations (0 means the condition held immediately).  Pure
    /// spin/yield regardless of strategy — for waits with no event count to
    /// park on.
    pub fn wait_until(&self, mut cond: impl FnMut() -> bool) -> u64 {
        let mut iterations = 0u64;
        let mut since_yield = 0u32;
        while !cond() {
            iterations += 1;
            since_yield += 1;
            if since_yield >= self.spin_before_yield {
                std::thread::yield_now();
                since_yield = 0;
            } else {
                std::hint::spin_loop();
            }
        }
        iterations
    }

    /// Waits until `cond` returns `true`, escalating through the
    /// strategy's phases; wake-ups arrive through `events`.
    ///
    /// * [`WaitStrategy::SpinYield`]: identical to [`wait_until`] (all
    ///   iterations are reported as spins or yields) — the `batch = 1`-style
    ///   ablation baseline.
    /// * [`WaitStrategy::Adaptive`]: spins `spin_before_yield` iterations,
    ///   yields with exponential backoff (1, 2, 4, … consecutive yields up
    ///   to [`YIELDS_BEFORE_PARK`] total), then parks on `events` until a
    ///   notification (every ring-cursor advance, clock tick and poison
    ///   notifies) re-checks the condition.
    ///
    /// [`wait_until`]: Self::wait_until
    pub fn wait_until_event(
        &self,
        events: &EventCount,
        mut cond: impl FnMut() -> bool,
    ) -> WaitTally {
        let mut tally = WaitTally::default();
        if cond() {
            return tally;
        }
        match self.strategy {
            WaitStrategy::SpinYield => {
                let mut since_yield = 0u32;
                loop {
                    since_yield += 1;
                    if since_yield >= self.spin_before_yield.max(1) {
                        std::thread::yield_now();
                        tally.yields += 1;
                        since_yield = 0;
                    } else {
                        std::hint::spin_loop();
                        tally.spins += 1;
                    }
                    if cond() {
                        return tally;
                    }
                }
            }
            WaitStrategy::Adaptive => {
                // Phase 1: bounded spin.
                for _ in 0..self.spin_before_yield {
                    std::hint::spin_loop();
                    tally.spins += 1;
                    if cond() {
                        return tally;
                    }
                }
                // Phase 2: exponential-backoff yield (1, 2, 4, … consecutive
                // yields per round, the final round truncated to the budget).
                let mut burst = 1u32;
                while tally.yields < u64::from(YIELDS_BEFORE_PARK) {
                    let remaining = u64::from(YIELDS_BEFORE_PARK) - tally.yields;
                    for _ in 0..u64::from(burst).min(remaining) {
                        std::thread::yield_now();
                        tally.yields += 1;
                        if cond() {
                            return tally;
                        }
                    }
                    burst = burst.saturating_mul(2);
                }
                // Phase 3: park until notified (or the backstop timeout).
                loop {
                    if events.park(&mut cond) {
                        return tally;
                    }
                    tally.parks += 1;
                    if cond() {
                        return tally;
                    }
                }
            }
        }
    }

    /// Spins until `cond` returns `true` or `timeout` elapses.
    ///
    /// Returns `true` when the condition held (including a last re-check at
    /// the deadline, so a condition that becomes true exactly at expiry is
    /// not reported as a timeout), `false` otherwise.  This is the single
    /// deadline-bounded spin/yield loop shared by the monitor (the ordering
    /// clock and the ordered-turn wait call it directly) and the agents.
    pub fn wait_until_deadline(
        &self,
        timeout: std::time::Duration,
        mut cond: impl FnMut() -> bool,
    ) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut since_yield = 0u32;
        loop {
            if cond() {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return cond();
            }
            since_yield += 1;
            if since_yield >= self.spin_before_yield.max(1) {
                std::thread::yield_now();
                since_yield = 0;
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

/// A fixed-size table of spin guards indexed by a hash bucket.
///
/// The master-side agents use one bucket per synchronization-variable hash to
/// make "record the op, then execute it" atomic with respect to other master
/// threads touching the *same* variable.  Distinct variables that hash to the
/// same bucket are falsely serialized — the exact phenomenon the paper
/// accepts for its clock wall ("the WoC agent is bound to assign some
/// non-conflicting memory locations to the same logical clock", §4.5).
///
/// Acquisition is test-and-test-and-set: contended waiters poll with a
/// relaxed load and only attempt the compare-exchange once the guard looks
/// free, so a contended bucket's cache line stays shared instead of
/// ping-ponging between writers.  Under the adaptive strategy a waiter that
/// spins out parks on the table's [`EventCount`]; `release` posts it.
#[derive(Debug)]
pub struct GuardTable {
    guards: Vec<AtomicBool>,
    waiter: Waiter,
    events: EventCount,
}

impl GuardTable {
    /// Creates a table with `buckets` guards and the legacy spin/yield
    /// waiter.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn new(buckets: usize, spin_before_yield: u32) -> Self {
        Self::with_waiter(buckets, Waiter::new(spin_before_yield))
    }

    /// Creates a table with `buckets` guards waiting with `waiter`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn with_waiter(buckets: usize, waiter: Waiter) -> Self {
        assert!(buckets > 0, "guard table needs at least one bucket");
        GuardTable {
            guards: (0..buckets).map(|_| AtomicBool::new(false)).collect(),
            waiter,
            events: EventCount::new(),
        }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.guards.len()
    }

    /// Maps an address to its bucket.
    ///
    /// The address is first aligned down to 8 bytes: the paper notes that a
    /// single `CMPXCHG8B` can modify two adjacent 32-bit sync variables, so
    /// variables sharing a 64-bit word must share a bucket (§4.5).
    pub fn bucket_for(&self, addr: u64) -> usize {
        let aligned = addr & !7;
        (fnv1a_u64(aligned) % self.guards.len() as u64) as usize
    }

    /// Acquires the guard for `bucket`, waiting until it is free.
    /// Returns the wait's tally, broken down by phase (all-zero on the
    /// uncontended fast path) — spins, yields and parks are kept separate
    /// because they are not time-commensurable (see [`WaitTally::total`]).
    pub fn acquire(&self, bucket: usize) -> WaitTally {
        let guard = &self.guards[bucket];
        // Uncontended fast path: one compare-exchange.
        if guard
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            return WaitTally::default();
        }
        self.waiter.wait_until_event(&self.events, || {
            // Test-and-test-and-set: read-only poll until the guard
            // looks free, then try to claim it.
            !guard.load(Ordering::Relaxed)
                && guard
                    .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
        })
    }

    /// Releases the guard for `bucket`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the guard was not held (a use-after-release
    /// bug in the caller).
    pub fn release(&self, bucket: usize) {
        let was = self.guards[bucket].swap(false, Ordering::Release);
        debug_assert!(was, "released a guard that was not held");
        self.events.notify();
    }
}

/// FNV-1a over the little-endian bytes of a `u64`.
pub fn fnv1a_u64(value: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in value.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn waiter_returns_zero_when_condition_already_true() {
        let w = Waiter::new(8);
        assert_eq!(w.wait_until(|| true), 0);
    }

    #[test]
    fn waiter_counts_iterations() {
        let w = Waiter::new(8);
        let mut calls = 0;
        let n = w.wait_until(|| {
            calls += 1;
            calls > 5
        });
        assert_eq!(n, 5);
    }

    #[test]
    fn wait_until_deadline_returns_true_when_condition_holds() {
        let w = Waiter::new(8);
        assert!(w.wait_until_deadline(std::time::Duration::from_millis(10), || true));
        let mut calls = 0;
        assert!(
            w.wait_until_deadline(std::time::Duration::from_secs(2), || {
                calls += 1;
                calls > 3
            })
        );
    }

    #[test]
    fn wait_until_deadline_times_out_on_a_stuck_condition() {
        let w = Waiter::new(8);
        let start = std::time::Instant::now();
        assert!(!w.wait_until_deadline(std::time::Duration::from_millis(30), || false));
        assert!(start.elapsed() >= std::time::Duration::from_millis(30));
    }

    #[test]
    fn zero_spin_budget_yields_every_iteration_without_hanging() {
        let w = Waiter::new(0);
        let mut calls = 0;
        assert_eq!(
            w.wait_until(|| {
                calls += 1;
                calls > 2
            }),
            2
        );
        assert!(w.wait_until_deadline(std::time::Duration::from_millis(50), || true));
    }

    #[test]
    fn adaptive_wait_escalates_to_parking_and_wakes_on_notify() {
        let events = Arc::new(EventCount::new());
        let flag = Arc::new(AtomicBool::new(false));
        let (e2, f2) = (Arc::clone(&events), Arc::clone(&flag));
        let handle = std::thread::spawn(move || {
            let w = Waiter::with_strategy(4, WaitStrategy::Adaptive);
            w.wait_until_event(&e2, || f2.load(Ordering::SeqCst))
        });
        std::thread::sleep(Duration::from_millis(30));
        flag.store(true, Ordering::SeqCst);
        events.notify_all();
        let tally = handle.join().unwrap();
        assert!(tally.stalled());
        assert!(
            tally.parks > 0,
            "a 30 ms wait must have escalated past spinning: {tally:?}"
        );
    }

    #[test]
    fn adaptive_wait_returns_immediately_on_a_true_condition() {
        let events = EventCount::new();
        let w = Waiter::with_strategy(8, WaitStrategy::Adaptive);
        let tally = w.wait_until_event(&events, || true);
        assert_eq!(tally, WaitTally::default());
        assert!(!tally.stalled());
    }

    #[test]
    fn spin_yield_strategy_never_parks() {
        let events = EventCount::new();
        let w = Waiter::with_strategy(2, WaitStrategy::SpinYield);
        let mut calls = 0;
        let tally = w.wait_until_event(&events, || {
            calls += 1;
            calls > 50
        });
        assert_eq!(tally.parks, 0);
        assert!(tally.spins + tally.yields >= 49);
    }

    #[test]
    fn notify_without_waiters_is_cheap_and_safe() {
        let events = EventCount::new();
        assert!(!events.has_waiters());
        events.notify();
        events.notify_all();
    }

    #[test]
    fn park_timeout_backstops_a_lost_wakeup() {
        // No notifier at all: the flag flips silently.  The park timeout
        // must still observe it promptly.
        let events = Arc::new(EventCount::new());
        let flag = Arc::new(AtomicBool::new(false));
        let (e2, f2) = (Arc::clone(&events), Arc::clone(&flag));
        let handle = std::thread::spawn(move || {
            let w = Waiter::with_strategy(1, WaitStrategy::Adaptive);
            w.wait_until_event(&e2, || f2.load(Ordering::SeqCst))
        });
        std::thread::sleep(Duration::from_millis(20));
        flag.store(true, Ordering::SeqCst);
        let tally = handle.join().unwrap();
        assert!(tally.parks > 0);
    }

    #[test]
    fn wait_tally_totals() {
        let t = WaitTally {
            spins: 3,
            yields: 2,
            parks: 1,
        };
        assert_eq!(t.total(), 6);
        assert!(t.stalled());
    }

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(WaitStrategy::SpinYield.name(), "spin-yield");
        assert_eq!(WaitStrategy::Adaptive.name(), "adaptive");
        assert_eq!(WaitStrategy::default(), WaitStrategy::Adaptive);
    }

    #[test]
    fn bucket_for_aligns_to_eight_bytes() {
        let t = GuardTable::new(64, 8);
        // Two "adjacent 32-bit sync variables" in the same 64-bit word must
        // map to the same bucket (the CMPXCHG8B case from §4.5).
        assert_eq!(t.bucket_for(0x1000), t.bucket_for(0x1004));
        // A variable in the next word may map elsewhere.
        let same = t.bucket_for(0x1000) == t.bucket_for(0x1008);
        let different_somewhere =
            (0..64u64).any(|i| t.bucket_for(0x1000) != t.bucket_for(0x1000 + 8 * (i + 1)));
        assert!(different_somewhere || same);
    }

    #[test]
    fn guard_acquire_release_is_exclusive() {
        let t = Arc::new(GuardTable::new(4, 8));
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = Arc::clone(&t);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    let b = t.bucket_for(0x2000);
                    t.acquire(b);
                    // Non-atomic-looking read-modify-write protected by the guard.
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    t.release(b);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn adaptive_guard_acquire_is_exclusive_under_contention() {
        let t = Arc::new(GuardTable::with_waiter(
            4,
            Waiter::with_strategy(4, WaitStrategy::Adaptive),
        ));
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = Arc::clone(&t);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let b = t.bucket_for(0x2000);
                    t.acquire(b);
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    t.release(b);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 2000);
    }

    #[test]
    fn distinct_buckets_do_not_exclude_each_other() {
        let t = GuardTable::new(16, 8);
        let b0 = 0;
        let b1 = 1;
        t.acquire(b0);
        // Acquiring a different bucket must not wait at all.
        assert!(!t.acquire(b1).stalled());
        t.release(b0);
        t.release(b1);
    }

    #[test]
    fn fnv_is_deterministic() {
        assert_eq!(fnv1a_u64(42), fnv1a_u64(42));
        assert_ne!(fnv1a_u64(42), fnv1a_u64(43));
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panics() {
        let _ = GuardTable::new(0, 8);
    }
}
