//! Spin guards and waiting primitives used by the agents.
//!
//! Two constraints shape this module.  First, the agents may not allocate
//! dynamically (§3.3 of the paper), so all guard state is a fixed-size array
//! sized at construction.  Second, the guards protect extremely short
//! critical sections (recording one sync op and executing one atomic
//! instruction), so they are spin locks with a bounded spin before yielding
//! to the OS scheduler — the same trade-off a futex-free, in-variant agent
//! has to make.

use std::sync::atomic::{AtomicBool, Ordering};

/// A bounded spinner: spins `spin_before_yield` iterations, then yields.
///
/// Returns the number of iterations spent waiting so callers can feed the
/// agent statistics.
#[derive(Debug, Clone, Copy)]
pub struct Waiter {
    spin_before_yield: u32,
}

impl Default for Waiter {
    /// The default spin budget (64 iterations per yield) used by the monitor
    /// wait paths and the agent configuration default.
    fn default() -> Self {
        Waiter::new(64)
    }
}

impl Waiter {
    /// Creates a waiter with the given spin budget per yield.
    pub fn new(spin_before_yield: u32) -> Self {
        Waiter { spin_before_yield }
    }

    /// Spins until `cond` returns `true`; returns the number of wait
    /// iterations (0 means the condition held immediately).
    pub fn wait_until(&self, mut cond: impl FnMut() -> bool) -> u64 {
        let mut iterations = 0u64;
        let mut since_yield = 0u32;
        while !cond() {
            iterations += 1;
            since_yield += 1;
            if since_yield >= self.spin_before_yield {
                std::thread::yield_now();
                since_yield = 0;
            } else {
                std::hint::spin_loop();
            }
        }
        iterations
    }

    /// Spins until `cond` returns `true` or `timeout` elapses.
    ///
    /// Returns `true` when the condition held (including a last re-check at
    /// the deadline, so a condition that becomes true exactly at expiry is
    /// not reported as a timeout), `false` otherwise.  This is the single
    /// deadline-bounded spin/yield loop shared by the monitor (the ordering
    /// clock and the ordered-turn wait call it directly) and the agents.
    pub fn wait_until_deadline(
        &self,
        timeout: std::time::Duration,
        mut cond: impl FnMut() -> bool,
    ) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut since_yield = 0u32;
        loop {
            if cond() {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return cond();
            }
            since_yield += 1;
            if since_yield >= self.spin_before_yield.max(1) {
                std::thread::yield_now();
                since_yield = 0;
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

/// A fixed-size table of spin guards indexed by a hash bucket.
///
/// The master-side agents use one bucket per synchronization-variable hash to
/// make "record the op, then execute it" atomic with respect to other master
/// threads touching the *same* variable.  Distinct variables that hash to the
/// same bucket are falsely serialized — the exact phenomenon the paper
/// accepts for its clock wall ("the WoC agent is bound to assign some
/// non-conflicting memory locations to the same logical clock", §4.5).
#[derive(Debug)]
pub struct GuardTable {
    guards: Vec<AtomicBool>,
    waiter: Waiter,
}

impl GuardTable {
    /// Creates a table with `buckets` guards.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn new(buckets: usize, spin_before_yield: u32) -> Self {
        assert!(buckets > 0, "guard table needs at least one bucket");
        GuardTable {
            guards: (0..buckets).map(|_| AtomicBool::new(false)).collect(),
            waiter: Waiter::new(spin_before_yield),
        }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.guards.len()
    }

    /// Maps an address to its bucket.
    ///
    /// The address is first aligned down to 8 bytes: the paper notes that a
    /// single `CMPXCHG8B` can modify two adjacent 32-bit sync variables, so
    /// variables sharing a 64-bit word must share a bucket (§4.5).
    pub fn bucket_for(&self, addr: u64) -> usize {
        let aligned = addr & !7;
        (fnv1a_u64(aligned) % self.guards.len() as u64) as usize
    }

    /// Acquires the guard for `bucket`, spinning until it is free.
    /// Returns the number of wait iterations.
    pub fn acquire(&self, bucket: usize) -> u64 {
        let guard = &self.guards[bucket];
        self.waiter.wait_until(|| {
            guard
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        })
    }

    /// Releases the guard for `bucket`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the guard was not held (a use-after-release
    /// bug in the caller).
    pub fn release(&self, bucket: usize) {
        let was = self.guards[bucket].swap(false, Ordering::Release);
        debug_assert!(was, "released a guard that was not held");
    }
}

/// FNV-1a over the little-endian bytes of a `u64`.
pub fn fnv1a_u64(value: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in value.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn waiter_returns_zero_when_condition_already_true() {
        let w = Waiter::new(8);
        assert_eq!(w.wait_until(|| true), 0);
    }

    #[test]
    fn waiter_counts_iterations() {
        let w = Waiter::new(8);
        let mut calls = 0;
        let n = w.wait_until(|| {
            calls += 1;
            calls > 5
        });
        assert_eq!(n, 5);
    }

    #[test]
    fn wait_until_deadline_returns_true_when_condition_holds() {
        let w = Waiter::new(8);
        assert!(w.wait_until_deadline(std::time::Duration::from_millis(10), || true));
        let mut calls = 0;
        assert!(
            w.wait_until_deadline(std::time::Duration::from_secs(2), || {
                calls += 1;
                calls > 3
            })
        );
    }

    #[test]
    fn wait_until_deadline_times_out_on_a_stuck_condition() {
        let w = Waiter::new(8);
        let start = std::time::Instant::now();
        assert!(!w.wait_until_deadline(std::time::Duration::from_millis(30), || false));
        assert!(start.elapsed() >= std::time::Duration::from_millis(30));
    }

    #[test]
    fn zero_spin_budget_yields_every_iteration_without_hanging() {
        let w = Waiter::new(0);
        let mut calls = 0;
        assert_eq!(
            w.wait_until(|| {
                calls += 1;
                calls > 2
            }),
            2
        );
        assert!(w.wait_until_deadline(std::time::Duration::from_millis(50), || true));
    }

    #[test]
    fn bucket_for_aligns_to_eight_bytes() {
        let t = GuardTable::new(64, 8);
        // Two "adjacent 32-bit sync variables" in the same 64-bit word must
        // map to the same bucket (the CMPXCHG8B case from §4.5).
        assert_eq!(t.bucket_for(0x1000), t.bucket_for(0x1004));
        // A variable in the next word may map elsewhere.
        let same = t.bucket_for(0x1000) == t.bucket_for(0x1008);
        let different_somewhere =
            (0..64u64).any(|i| t.bucket_for(0x1000) != t.bucket_for(0x1000 + 8 * (i + 1)));
        assert!(different_somewhere || same);
    }

    #[test]
    fn guard_acquire_release_is_exclusive() {
        let t = Arc::new(GuardTable::new(4, 8));
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = Arc::clone(&t);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    let b = t.bucket_for(0x2000);
                    t.acquire(b);
                    // Non-atomic-looking read-modify-write protected by the guard.
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    t.release(b);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn distinct_buckets_do_not_exclude_each_other() {
        let t = GuardTable::new(16, 8);
        let b0 = 0;
        let b1 = 1;
        t.acquire(b0);
        // Acquiring a different bucket must not wait forever.
        assert!(t.acquire(b1) < 1_000);
        t.release(b0);
        t.release(b1);
    }

    #[test]
    fn fnv_is_deterministic() {
        assert_eq!(fnv1a_u64(42), fnv1a_u64(42));
        assert_ne!(fnv1a_u64(42), fnv1a_u64(43));
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panics() {
        let _ = GuardTable::new(0, 8);
    }
}
