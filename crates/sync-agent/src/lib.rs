//! Synchronization agents for the MVEE reproduction.
//!
//! The paper's key contribution is a family of *synchronization agents*:
//! shared libraries injected into each variant that record the order in which
//! the **master** variant executes its synchronization operations (sync ops)
//! and replay an equivalent order in the **slave** variants.  A sync op, in
//! the paper's terminology, is an individual instruction that accesses a
//! synchronization variable — a `LOCK`-prefixed instruction, an `XCHG`, or an
//! aligned load/store that may alias one of those (§4.3).
//!
//! This crate implements the three agents the paper evaluates:
//!
//! * [`TotalOrderAgent`](agents::TotalOrderAgent) — records a single global
//!   order in one shared buffer and replays it *exactly*; simple but slaves
//!   stall on unrelated operations (§4.5, Figure 4a).
//! * [`PartialOrderAgent`](agents::PartialOrderAgent) — only enforces order
//!   between *dependent* sync ops (same memory location); slaves look ahead
//!   in a window of the shared buffer (§4.5, Figure 4b).
//! * [`WallOfClocksAgent`](agents::WallOfClocksAgent) — the paper's novel
//!   design: synchronization variables are hashed onto a fixed wall of
//!   logical clocks, each master thread records `(clock, time)` pairs into
//!   its own single-producer buffer, and slaves wait on their local clock
//!   copies (§4.5, Figure 4c).
//!
//! All agents obey the constraint of §3.3: they never allocate memory
//! dynamically after attachment, because an allocation in the master that
//! does not happen identically in the slaves would itself cause divergence.
//! Buffers and clock walls are sized at construction from an
//! [`AgentConfig`](context::AgentConfig).
//!
//! # Usage
//!
//! The MVEE constructs one agent per run ("injects the agent") and hands each
//! variant thread a [`SyncContext`](context::SyncContext) describing its role
//! (master or n-th slave) and its logical thread index.  Instrumented code
//! then brackets every sync op with
//! [`before_sync_op`](SyncAgent::before_sync_op) and
//! [`after_sync_op`](SyncAgent::after_sync_op), exactly like the
//! instrumented spinlock in Listing 3 of the paper:
//!
//! ```
//! use std::sync::atomic::{AtomicU32, Ordering};
//! use mvee_sync_agent::agents::WallOfClocksAgent;
//! use mvee_sync_agent::context::{AgentConfig, SyncContext, VariantRole};
//! use mvee_sync_agent::SyncAgent;
//!
//! let agent = WallOfClocksAgent::new(AgentConfig::default().with_variants(2));
//! let master = SyncContext::new(VariantRole::Master, 0);
//! let lock_word = AtomicU32::new(0);
//! let addr = &lock_word as *const _ as u64;
//!
//! // Master side of an instrumented spinlock acquisition.
//! agent.before_sync_op(&master, addr);
//! let acquired = lock_word
//!     .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
//!     .is_ok();
//! agent.after_sync_op(&master, addr);
//! assert!(acquired);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agents;
pub mod clockwall;
pub mod context;
pub mod guards;
pub mod ring;
pub mod spsc;
pub mod stats;

pub use agents::{AgentKind, NullAgent, PartialOrderAgent, TotalOrderAgent, WallOfClocksAgent};
pub use context::{AgentConfig, SyncContext, VariantRole};
pub use stats::AgentStats;

/// An event the agents report to the embedding monitor through a
/// [`ReplicationHook`].
#[derive(Clone, Copy)]
pub enum ReplicationEvent<'a> {
    /// A replication point: the calling thread is entering
    /// [`SyncAgent::before_sync_op`] and is about to record or replay a sync
    /// op.  The monitor uses this to flush that thread's deferred
    /// comparisons, so a batched comparison can never stay pending across a
    /// replicated synchronization action.
    SyncOp(&'a context::SyncContext),
    /// The agent is being poisoned: replication is over, and any deferred
    /// work batched behind it should be abandoned rather than flushed.
    Poisoned,
}

/// Callback the MVEE front end installs on an agent with
/// [`SyncAgent::set_replication_hook`].
///
/// Invoked inline on the calling variant thread; implementations may block
/// (a comparison flush is itself a rendezvous) but must never call back into
/// the same agent's sync-op hooks.
pub type ReplicationHook = std::sync::Arc<dyn Fn(ReplicationEvent<'_>) + Send + Sync>;

/// The interface every synchronization agent implements.
///
/// Instrumented code calls [`before_sync_op`](Self::before_sync_op)
/// immediately before executing a sync op and
/// [`after_sync_op`](Self::after_sync_op) immediately after, passing the
/// address of the synchronization variable.  In the master variant the pair
/// records the op; in a slave variant `before_sync_op` blocks until executing
/// the op would be consistent with the recorded order.
pub trait SyncAgent: Send + Sync {
    /// Which agent design this is.
    fn kind(&self) -> agents::AgentKind;

    /// Called immediately before a sync op on the variable at `addr`.
    ///
    /// * Master role: claims the op's position in the recorded order.
    /// * Slave role: blocks until all ops that must precede this one (under
    ///   this agent's ordering discipline) have completed.
    fn before_sync_op(&self, ctx: &context::SyncContext, addr: u64);

    /// Called immediately after the sync op on the variable at `addr` has
    /// executed.
    ///
    /// * Master role: publishes the recorded op so slaves may replay it.
    /// * Slave role: marks the op as completed, unblocking dependent ops.
    fn after_sync_op(&self, ctx: &context::SyncContext, addr: u64);

    /// Returns a snapshot of the agent's counters.
    fn stats(&self) -> stats::AgentStats;

    /// Returns one stripe of the agent's lane-striped counters (the
    /// per-thread-group view, mirroring the monitor's `lane_stats`), so the
    /// stall taxonomy — spins vs yields vs parks — can be attributed to a
    /// thread group instead of only globally.  Ring-level counters
    /// (`cursor_rescans`) are not striped and appear only in the aggregate
    /// [`stats`](Self::stats).  The default implementation returns the
    /// aggregate snapshot (the null agent has a single conceptual lane).
    fn lane_stats(&self, _lane: usize) -> stats::AgentStats {
        self.stats()
    }

    /// Marks the agent as poisoned and releases every blocked wait.
    ///
    /// The monitor calls this when divergence has been detected: record and
    /// replay cannot meaningfully continue (the master may already have
    /// stopped recording, slaves may already have stopped draining), so any
    /// thread blocked in [`before_sync_op`](Self::before_sync_op) — a replay
    /// wait or a full-buffer wait — must return promptly instead of
    /// deadlocking the shutdown.  After poisoning, the sync-op hooks degrade
    /// to (near) no-ops; the variants are about to be torn down anyway.
    ///
    /// The default implementation does nothing (the null agent never blocks).
    fn poison(&self) {}

    /// Whether the agent has been poisoned.
    fn is_poisoned(&self) -> bool {
        false
    }

    /// Tells the agent that `variant` has been quarantined: dropped from
    /// the replication quorum after a proven divergence, while the
    /// surviving variants keep recording and replaying.  Unlike
    /// [`poison`](Self::poison) this is not a shutdown — the agent should
    /// keep serving the survivors and merely stop expecting the quarantined
    /// variant to drain its buffers.
    ///
    /// The default implementation does nothing: the built-in agents' replay
    /// waits are already released by the monitor's rendezvous sweep, and a
    /// quarantined variant's threads stop calling the sync-op hooks.
    fn quarantine_lane(&self, _variant: usize) {}

    /// Tells the agent that a previously quarantined `variant` has been
    /// restored to the quorum at a quiescent boundary and will resume
    /// issuing sync ops from the survivors' frontier.
    ///
    /// The default implementation does nothing (see
    /// [`quarantine_lane`](Self::quarantine_lane)).
    fn readmit_lane(&self, _variant: usize) {}

    /// Installs the [`ReplicationHook`] fired at every replication point
    /// (the start of [`before_sync_op`](Self::before_sync_op)) and on
    /// [`poison`](Self::poison).
    ///
    /// The MVEE front end uses this to tie the monitor's deferred-comparison
    /// batches to the agent's replication points: pending comparisons are
    /// flushed before a sync op replicates and abandoned when replication is
    /// poisoned.  At most one hook can be installed; later installs are
    /// ignored.  The default implementation discards the hook (for agents
    /// outside this crate that predate it).
    fn set_replication_hook(&self, _hook: ReplicationHook) {}
}

/// Convenience wrapper that brackets a closure between
/// [`SyncAgent::before_sync_op`] and [`SyncAgent::after_sync_op`].
pub fn with_sync_op<T>(
    agent: &dyn SyncAgent,
    ctx: &context::SyncContext,
    addr: u64,
    op: impl FnOnce() -> T,
) -> T {
    agent.before_sync_op(ctx, addr);
    let result = op();
    agent.after_sync_op(ctx, addr);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::NullAgent;
    use crate::context::{SyncContext, VariantRole};

    #[test]
    fn with_sync_op_returns_closure_result() {
        let agent = NullAgent::new();
        let ctx = SyncContext::new(VariantRole::Master, 0);
        let v = with_sync_op(&agent, &ctx, 0x1000, || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(agent.stats().ops_recorded, 1);
    }
}
