//! Fixed-capacity sync buffers (ring buffers of sync-op records).
//!
//! The paper's agents communicate through *sync buffers*: shared-memory ring
//! buffers the MVEE maps into every variant (§4).  The total-order and
//! partial-order agents use a single buffer with one producer cursor shared
//! by all master threads; the wall-of-clocks agent uses one buffer per master
//! thread so that each buffer has a single producer (§4.5).
//!
//! [`RecordRing`] covers both shapes: it is a bounded, multi-producer ring
//! with one *read cursor per slave variant*.  A slot may only be reused once
//! every slave's cursor has moved past it, which is how the master is slowed
//! down (back-pressure) when a slave lags more than one buffer behind.
//!
//! The implementation uses only safe atomics; each slot carries a sequence
//! number that is published with `Release` ordering after the record fields
//! are written, and readers check it with `Acquire` before trusting the
//! fields (the usual Lamport/Vyukov bounded-queue publication scheme).

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::guards::Waiter;

/// One recorded synchronization operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncRecord {
    /// Logical index of the master thread that executed the op.
    pub thread: u32,
    /// Address of the synchronization variable *in the master variant*.
    /// Slaves never interpret this as one of their own addresses; they only
    /// compare it against other recorded addresses (partial-order agent) or
    /// ignore it entirely (total-order agent).
    pub addr: u64,
    /// Agent-specific auxiliary value: the logical-clock identifier for the
    /// wall-of-clocks agent, zero otherwise.
    pub clock: u32,
    /// Agent-specific auxiliary value: the logical-clock time for the
    /// wall-of-clocks agent, zero otherwise.
    pub time: u64,
}

impl SyncRecord {
    /// A record carrying only the executing thread and the variable address.
    pub fn simple(thread: u32, addr: u64) -> Self {
        SyncRecord {
            thread,
            addr,
            clock: 0,
            time: 0,
        }
    }

    /// A wall-of-clocks record.
    pub fn with_clock(thread: u32, addr: u64, clock: u32, time: u64) -> Self {
        SyncRecord {
            thread,
            addr,
            clock,
            time,
        }
    }
}

/// A slot of the ring.  `seq == position + 1` marks the record as published
/// for the generation that starts at `position`.
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    thread: AtomicU64,
    addr: AtomicU64,
    clock: AtomicU64,
    time: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            thread: AtomicU64::new(0),
            addr: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            time: AtomicU64::new(0),
        }
    }
}

/// Outcome of a non-blocking push attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The record was stored at the returned position.
    Stored(u64),
    /// The ring is full: some slave has not yet consumed the slot that would
    /// be overwritten.
    Full,
}

/// A bounded multi-producer ring with one read cursor per slave variant.
#[derive(Debug)]
pub struct RecordRing {
    slots: Vec<Slot>,
    capacity: u64,
    write_cursor: AtomicU64,
    reader_cursors: Vec<AtomicU64>,
}

impl RecordRing {
    /// Creates a ring with `capacity` slots (must be a power of two) and
    /// `readers` independent read cursors.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not a power of two or `readers` is zero.
    pub fn new(capacity: usize, readers: usize) -> Self {
        assert!(
            capacity.is_power_of_two(),
            "capacity must be a power of two"
        );
        assert!(readers > 0, "need at least one reader");
        RecordRing {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            capacity: capacity as u64,
            write_cursor: AtomicU64::new(0),
            reader_cursors: (0..readers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Ring capacity in records.
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Number of read cursors.
    pub fn readers(&self) -> usize {
        self.reader_cursors.len()
    }

    /// Position the next pushed record will receive.
    pub fn write_pos(&self) -> u64 {
        self.write_cursor.load(Ordering::Acquire)
    }

    /// Current position of reader `reader`.
    pub fn reader_pos(&self, reader: usize) -> u64 {
        self.reader_cursors[reader].load(Ordering::Acquire)
    }

    /// The slowest reader's position; slots below it may be reused.
    pub fn min_reader_pos(&self) -> u64 {
        self.reader_cursors
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .min()
            .unwrap_or(0)
    }

    /// Whether at least one slot is free for the next push.
    pub fn has_space(&self) -> bool {
        self.write_pos() - self.min_reader_pos() < self.capacity
    }

    /// Attempts to append `record` without blocking.
    pub fn try_push(&self, record: SyncRecord) -> PushOutcome {
        loop {
            let pos = self.write_cursor.load(Ordering::Acquire);
            if pos - self.min_reader_pos() >= self.capacity {
                return PushOutcome::Full;
            }
            if self
                .write_cursor
                .compare_exchange_weak(pos, pos + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                let slot = &self.slots[(pos % self.capacity) as usize];
                slot.thread
                    .store(u64::from(record.thread), Ordering::Relaxed);
                slot.addr.store(record.addr, Ordering::Relaxed);
                slot.clock.store(u64::from(record.clock), Ordering::Relaxed);
                slot.time.store(record.time, Ordering::Relaxed);
                slot.seq.store(pos + 1, Ordering::Release);
                return PushOutcome::Stored(pos);
            }
        }
    }

    /// Appends `record`, spinning (with the supplied waiter) while the ring
    /// is full.  Returns the position and the number of wait iterations.
    pub fn push_blocking(&self, record: SyncRecord, waiter: &Waiter) -> (u64, u64) {
        let mut stalls = 0u64;
        loop {
            match self.try_push(record) {
                PushOutcome::Stored(pos) => return (pos, stalls),
                PushOutcome::Full => {
                    stalls += waiter.wait_until(|| {
                        self.write_cursor.load(Ordering::Acquire) - self.min_reader_pos()
                            < self.capacity
                    });
                    // Retry the push; another producer may have raced us.
                    stalls += 1;
                }
            }
        }
    }

    /// Reads the record at `pos` if it has been published.
    pub fn get(&self, pos: u64) -> Option<SyncRecord> {
        let slot = &self.slots[(pos % self.capacity) as usize];
        if slot.seq.load(Ordering::Acquire) != pos + 1 {
            return None;
        }
        Some(SyncRecord {
            thread: slot.thread.load(Ordering::Relaxed) as u32,
            addr: slot.addr.load(Ordering::Relaxed),
            clock: slot.clock.load(Ordering::Relaxed) as u32,
            time: slot.time.load(Ordering::Relaxed),
        })
    }

    /// Blocks until the record at `pos` is published, then returns it along
    /// with the number of wait iterations.
    pub fn get_blocking(&self, pos: u64, waiter: &Waiter) -> (SyncRecord, u64) {
        let mut waited = 0;
        loop {
            if let Some(r) = self.get(pos) {
                return (r, waited);
            }
            waited += waiter.wait_until(|| self.get(pos).is_some()) + 1;
        }
    }

    /// Advances reader `reader` by one position.
    pub fn advance_reader(&self, reader: usize) {
        self.reader_cursors[reader].fetch_add(1, Ordering::AcqRel);
    }

    /// Atomically advances reader `reader` from `from` to `from + 1`.
    ///
    /// Returns `false` when another thread advanced the cursor first.  The
    /// partial-order agent uses this when several slave threads race to move
    /// the completion frontier forward.
    pub fn try_advance_reader(&self, reader: usize, from: u64) -> bool {
        self.reader_cursors[reader]
            .compare_exchange(from, from + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Sets reader `reader` to an absolute position (used by the
    /// partial-order agent when its completion frontier jumps forward).
    pub fn set_reader_pos(&self, reader: usize, pos: u64) {
        self.reader_cursors[reader].store(pos, Ordering::Release);
    }

    /// Number of records published but not yet consumed by reader `reader`.
    pub fn backlog(&self, reader: usize) -> u64 {
        self.write_pos().saturating_sub(self.reader_pos(reader))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn waiter() -> Waiter {
        Waiter::new(16)
    }

    #[test]
    fn push_and_get_roundtrip() {
        let ring = RecordRing::new(8, 1);
        let rec = SyncRecord::with_clock(3, 0xdead, 7, 99);
        assert_eq!(ring.try_push(rec), PushOutcome::Stored(0));
        assert_eq!(ring.get(0), Some(rec));
        assert_eq!(ring.get(1), None);
    }

    #[test]
    fn records_are_fifo_per_position() {
        let ring = RecordRing::new(8, 1);
        for i in 0..8u64 {
            ring.try_push(SyncRecord::simple(i as u32, i * 16));
        }
        for i in 0..8u64 {
            assert_eq!(ring.get(i).unwrap().thread, i as u32);
        }
    }

    #[test]
    fn ring_reports_full_until_readers_advance() {
        let ring = RecordRing::new(4, 2);
        for i in 0..4 {
            assert!(matches!(
                ring.try_push(SyncRecord::simple(0, i)),
                PushOutcome::Stored(_)
            ));
        }
        assert_eq!(ring.try_push(SyncRecord::simple(0, 99)), PushOutcome::Full);
        // One reader advancing is not enough; the slowest reader gates reuse.
        ring.advance_reader(0);
        assert_eq!(ring.try_push(SyncRecord::simple(0, 99)), PushOutcome::Full);
        ring.advance_reader(1);
        assert!(matches!(
            ring.try_push(SyncRecord::simple(0, 99)),
            PushOutcome::Stored(4)
        ));
    }

    #[test]
    fn wraparound_overwrites_consumed_slots_only() {
        let ring = RecordRing::new(4, 1);
        for i in 0..4 {
            ring.try_push(SyncRecord::simple(1, i));
        }
        for _ in 0..4 {
            ring.advance_reader(0);
        }
        for i in 4..8 {
            assert!(matches!(
                ring.try_push(SyncRecord::simple(2, i)),
                PushOutcome::Stored(_)
            ));
        }
        // Old positions are no longer published under their old sequence.
        assert_eq!(ring.get(0), None);
        assert_eq!(ring.get(5).unwrap().thread, 2);
    }

    #[test]
    fn backlog_tracks_unconsumed_records() {
        let ring = RecordRing::new(8, 1);
        ring.try_push(SyncRecord::simple(0, 1));
        ring.try_push(SyncRecord::simple(0, 2));
        assert_eq!(ring.backlog(0), 2);
        ring.advance_reader(0);
        assert_eq!(ring.backlog(0), 1);
    }

    #[test]
    fn get_blocking_waits_for_publication() {
        let ring = Arc::new(RecordRing::new(8, 1));
        let r2 = Arc::clone(&ring);
        let handle = std::thread::spawn(move || r2.get_blocking(0, &waiter()).0);
        std::thread::sleep(std::time::Duration::from_millis(10));
        ring.try_push(SyncRecord::simple(5, 0x42));
        let rec = handle.join().unwrap();
        assert_eq!(rec.thread, 5);
        assert_eq!(rec.addr, 0x42);
    }

    #[test]
    fn push_blocking_waits_for_reader() {
        let ring = Arc::new(RecordRing::new(2, 1));
        ring.try_push(SyncRecord::simple(0, 0));
        ring.try_push(SyncRecord::simple(0, 1));
        let r2 = Arc::clone(&ring);
        let handle = std::thread::spawn(move || {
            let (pos, _stalls) = r2.push_blocking(SyncRecord::simple(0, 2), &waiter());
            pos
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        ring.advance_reader(0);
        assert_eq!(handle.join().unwrap(), 2);
    }

    #[test]
    fn concurrent_producers_do_not_lose_records() {
        let ring = Arc::new(RecordRing::new(1024, 1));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let ring = Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    ring.push_blocking(SyncRecord::simple(t, i), &waiter());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ring.write_pos(), 800);
        // Every position holds a published record and per-thread order is
        // preserved (addresses are strictly increasing per thread).
        let mut last_addr = [None::<u64>; 4];
        for pos in 0..800 {
            let rec = ring.get(pos).expect("record published");
            let t = rec.thread as usize;
            if let Some(prev) = last_addr[t] {
                assert!(rec.addr > prev, "per-thread order violated");
            }
            last_addr[t] = Some(rec.addr);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_capacity_panics() {
        let _ = RecordRing::new(3, 1);
    }

    #[test]
    #[should_panic(expected = "at least one reader")]
    fn zero_readers_panics() {
        let _ = RecordRing::new(4, 0);
    }
}
