//! Fixed-capacity sync buffers (ring buffers of sync-op records).
//!
//! The paper's agents communicate through *sync buffers*: shared-memory ring
//! buffers the MVEE maps into every variant (§4).  The total-order and
//! partial-order agents use a single buffer with one producer cursor shared
//! by all master threads; the wall-of-clocks agent uses one buffer per master
//! thread so that each buffer has a single producer (§4.5).
//!
//! [`RecordRing`] covers both shapes: it is a bounded ring with one *read
//! cursor per slave variant*.  A slot may only be reused once every slave's
//! cursor has moved past it, which is how the master is slowed down
//! (back-pressure) when a slave lags more than one buffer behind.
//!
//! # Hot-path layout
//!
//! Three contention sources are engineered out of the push path:
//!
//! * **Cached minimum reader cursor** — the full-check used to cost an
//!   O(readers) `Acquire` scan of every slave cursor on *every* push.  The
//!   producer side now keeps a cached lower bound of the slowest reader
//!   (LMAX-style gating sequence) and only rescans when the cached value
//!   would block the push; [`rescans`](RecordRing::rescans) counts how often
//!   that happens.
//! * **SPSC fast path** — [`new_spsc`](RecordRing::new_spsc) marks a ring
//!   single-producer (the wall-of-clocks one-ring-per-master-thread shape),
//!   and its push is a plain load + plain store: no compare-exchange at all.
//! * **False-sharing control** — slots are cache-line-aligned
//!   (`#[repr(align(64))]`), and the write cursor, the cached minimum and
//!   every reader cursor live on their own cache line, so a producer
//!   publishing and a slave consuming never dirty each other's lines.
//!
//! The implementation uses only safe atomics; each slot carries a sequence
//! number that is published with `Release` ordering after the record fields
//! are written, and readers check it with `Acquire` before trusting the
//! fields (the usual Lamport/Vyukov bounded-queue publication scheme).
//! Every cursor advance posts the ring's [`EventCount`] so adaptively
//! parked waiters (see [`Waiter`]) are woken promptly.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::guards::{EventCount, WaitTally, Waiter};

/// One recorded synchronization operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncRecord {
    /// Logical index of the master thread that executed the op.
    pub thread: u32,
    /// Address of the synchronization variable *in the master variant*.
    /// Slaves never interpret this as one of their own addresses; they only
    /// compare it against other recorded addresses (partial-order agent) or
    /// ignore it entirely (total-order agent).
    pub addr: u64,
    /// Agent-specific auxiliary value: the logical-clock identifier for the
    /// wall-of-clocks agent, zero otherwise.
    pub clock: u32,
    /// Agent-specific auxiliary value: the logical-clock time for the
    /// wall-of-clocks agent, zero otherwise.
    pub time: u64,
}

impl SyncRecord {
    /// A record carrying only the executing thread and the variable address.
    pub fn simple(thread: u32, addr: u64) -> Self {
        SyncRecord {
            thread,
            addr,
            clock: 0,
            time: 0,
        }
    }

    /// A wall-of-clocks record.
    pub fn with_clock(thread: u32, addr: u64, clock: u32, time: u64) -> Self {
        SyncRecord {
            thread,
            addr,
            clock,
            time,
        }
    }
}

/// A slot of the ring.  `seq == position + 1` marks the record as published
/// for the generation that starts at `position`.  One cache line per slot:
/// a slave polling slot `n`'s sequence must not stall the producer writing
/// slot `n + 1`.
#[derive(Debug)]
#[repr(align(64))]
struct Slot {
    seq: AtomicU64,
    thread: AtomicU64,
    addr: AtomicU64,
    clock: AtomicU64,
    time: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            thread: AtomicU64::new(0),
            addr: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            time: AtomicU64::new(0),
        }
    }
}

/// A cursor on its own cache line, so the producer's write cursor, the
/// cached minimum and each slave's read cursor never false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedCursor(AtomicU64);

/// Outcome of a non-blocking push attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The record was stored at the returned position.
    Stored(u64),
    /// The ring is full: some slave has not yet consumed the slot that would
    /// be overwritten.
    Full,
}

/// A bounded ring with one read cursor per slave variant.
#[derive(Debug)]
pub struct RecordRing {
    slots: Vec<Slot>,
    capacity: u64,
    /// Single-producer mode: push is plain load + store, no CAS.
    spsc: bool,
    write_cursor: PaddedCursor,
    /// Producer-side lower bound on the slowest reader's position.  Only
    /// refreshed (by rescanning every reader cursor) when the cached value
    /// would make the push block — the LMAX "gating sequence" trick that
    /// turns the per-push O(readers) scan into amortized O(1).
    cached_min_reader: PaddedCursor,
    /// How often the cache had to be refreshed from the real cursors.
    rescans: PaddedCursor,
    reader_cursors: Vec<PaddedCursor>,
    /// Parking target for every thread waiting on this ring (producers on
    /// space, consumers on publication or cursor movement); posted on every
    /// cursor advance.
    events: EventCount,
}

impl RecordRing {
    /// Creates a multi-producer ring with `capacity` slots (must be a power
    /// of two) and `readers` independent read cursors.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not a power of two or `readers` is zero.
    pub fn new(capacity: usize, readers: usize) -> Self {
        Self::build(capacity, readers, false)
    }

    /// Creates a *single-producer* ring: [`try_push`](Self::try_push) is a
    /// plain load + store with no compare-exchange.  The caller guarantees
    /// at most one thread ever pushes (the wall-of-clocks agent's
    /// one-ring-per-master-thread shape, §4.5).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not a power of two or `readers` is zero.
    pub fn new_spsc(capacity: usize, readers: usize) -> Self {
        Self::build(capacity, readers, true)
    }

    fn build(capacity: usize, readers: usize, spsc: bool) -> Self {
        assert!(
            capacity.is_power_of_two(),
            "capacity must be a power of two"
        );
        assert!(readers > 0, "need at least one reader");
        RecordRing {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            capacity: capacity as u64,
            spsc,
            write_cursor: PaddedCursor::default(),
            cached_min_reader: PaddedCursor::default(),
            rescans: PaddedCursor::default(),
            reader_cursors: (0..readers).map(|_| PaddedCursor::default()).collect(),
            events: EventCount::new(),
        }
    }

    /// Ring capacity in records.
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Number of read cursors.
    pub fn readers(&self) -> usize {
        self.reader_cursors.len()
    }

    /// Whether this ring runs the single-producer fast path.
    pub fn is_spsc(&self) -> bool {
        self.spsc
    }

    /// The ring's parking target: posted on every cursor advance, and by
    /// the agents on poison so parked waiters re-check their bail-out
    /// condition.
    pub fn events(&self) -> &EventCount {
        &self.events
    }

    /// How often a push had to refresh the cached minimum reader cursor by
    /// rescanning every reader (the producer-side stall taxonomy).
    pub fn rescans(&self) -> u64 {
        self.rescans.0.load(Ordering::Relaxed)
    }

    /// Position the next pushed record will receive.
    pub fn write_pos(&self) -> u64 {
        self.write_cursor.0.load(Ordering::Acquire)
    }

    /// Current position of reader `reader`.
    pub fn reader_pos(&self, reader: usize) -> u64 {
        self.reader_cursors[reader].0.load(Ordering::Acquire)
    }

    /// The slowest reader's position; slots below it may be reused.
    pub fn min_reader_pos(&self) -> u64 {
        self.reader_cursors
            .iter()
            .map(|c| c.0.load(Ordering::Acquire))
            .min()
            .unwrap_or(0)
    }

    /// Whether at least one slot is free for the next push.
    pub fn has_space(&self) -> bool {
        self.write_pos() - self.min_reader_pos() < self.capacity
    }

    /// Whether the slot at `pos` is free, consulting the cached minimum
    /// reader first and rescanning the real cursors only when the cache
    /// would block.  The cache is a lower bound (reader cursors only ever
    /// advance), so a "free" verdict from the cache is always safe.
    #[inline]
    fn free_for(&self, pos: u64) -> bool {
        if pos.wrapping_sub(self.cached_min_reader.0.load(Ordering::Relaxed)) < self.capacity {
            return true;
        }
        let min = self.min_reader_pos();
        self.rescans.0.fetch_add(1, Ordering::Relaxed);
        // `fetch_max` keeps the cache monotone when racing producers
        // publish rescan results out of order.
        self.cached_min_reader.0.fetch_max(min, Ordering::Relaxed);
        pos.wrapping_sub(min) < self.capacity
    }

    /// Attempts to append `record` without blocking.
    pub fn try_push(&self, record: SyncRecord) -> PushOutcome {
        if self.spsc {
            // Single producer: nobody else moves the write cursor, so a
            // relaxed load and a release store replace the CAS loop.
            let pos = self.write_cursor.0.load(Ordering::Relaxed);
            if !self.free_for(pos) {
                return PushOutcome::Full;
            }
            self.publish(pos, record);
            self.write_cursor.0.store(pos + 1, Ordering::Release);
            self.events.notify();
            return PushOutcome::Stored(pos);
        }
        loop {
            let pos = self.write_cursor.0.load(Ordering::Acquire);
            if !self.free_for(pos) {
                return PushOutcome::Full;
            }
            if self
                .write_cursor
                .0
                .compare_exchange_weak(pos, pos + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.publish(pos, record);
                self.events.notify();
                return PushOutcome::Stored(pos);
            }
        }
    }

    #[inline]
    fn publish(&self, pos: u64, record: SyncRecord) {
        let slot = &self.slots[(pos % self.capacity) as usize];
        slot.thread
            .store(u64::from(record.thread), Ordering::Relaxed);
        slot.addr.store(record.addr, Ordering::Relaxed);
        slot.clock.store(u64::from(record.clock), Ordering::Relaxed);
        slot.time.store(record.time, Ordering::Relaxed);
        slot.seq.store(pos + 1, Ordering::Release);
    }

    /// Appends `record`, waiting (with the supplied waiter, parked on the
    /// ring's event count) while the ring is full.  Returns the position and
    /// the accumulated wait tally, with spins, yields and parks reported
    /// separately (they are not time-commensurable; see
    /// [`WaitTally::total`]).
    pub fn push_blocking(&self, record: SyncRecord, waiter: &Waiter) -> (u64, WaitTally) {
        let mut tally = WaitTally::default();
        loop {
            match self.try_push(record) {
                PushOutcome::Stored(pos) => return (pos, tally),
                PushOutcome::Full => {
                    tally.merge(waiter.wait_until_event(&self.events, || self.has_space()));
                    // Retry the push; another producer may have raced us.
                }
            }
        }
    }

    /// Reads the record at `pos` if it has been published.
    pub fn get(&self, pos: u64) -> Option<SyncRecord> {
        let slot = &self.slots[(pos % self.capacity) as usize];
        if slot.seq.load(Ordering::Acquire) != pos + 1 {
            return None;
        }
        Some(SyncRecord {
            thread: slot.thread.load(Ordering::Relaxed) as u32,
            addr: slot.addr.load(Ordering::Relaxed),
            clock: slot.clock.load(Ordering::Relaxed) as u32,
            time: slot.time.load(Ordering::Relaxed),
        })
    }

    /// Blocks until the record at `pos` is published, then returns it along
    /// with the accumulated wait tally (spin/yield/park split, as for
    /// [`push_blocking`](Self::push_blocking)).
    pub fn get_blocking(&self, pos: u64, waiter: &Waiter) -> (SyncRecord, WaitTally) {
        let mut tally = WaitTally::default();
        loop {
            if let Some(r) = self.get(pos) {
                return (r, tally);
            }
            tally.merge(waiter.wait_until_event(&self.events, || self.get(pos).is_some()));
        }
    }

    /// Advances reader `reader` by one position.
    pub fn advance_reader(&self, reader: usize) {
        self.reader_cursors[reader].0.fetch_add(1, Ordering::AcqRel);
        self.events.notify();
    }

    /// Atomically advances reader `reader` from `from` to `from + 1`.
    ///
    /// Returns `false` when another thread advanced the cursor first.  The
    /// partial-order agent uses this when several slave threads race to move
    /// the completion frontier forward.
    pub fn try_advance_reader(&self, reader: usize, from: u64) -> bool {
        let advanced = self.reader_cursors[reader]
            .0
            .compare_exchange(from, from + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        if advanced {
            self.events.notify();
        }
        advanced
    }

    /// Number of records published but not yet consumed by reader `reader`.
    pub fn backlog(&self, reader: usize) -> u64 {
        self.write_pos().saturating_sub(self.reader_pos(reader))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn waiter() -> Waiter {
        Waiter::new(16)
    }

    /// Every test body runs against both ring flavours where the scenario
    /// is single-producer-safe.
    fn both_rings(capacity: usize, readers: usize) -> [RecordRing; 2] {
        [
            RecordRing::new(capacity, readers),
            RecordRing::new_spsc(capacity, readers),
        ]
    }

    #[test]
    fn push_and_get_roundtrip() {
        for ring in both_rings(8, 1) {
            let rec = SyncRecord::with_clock(3, 0xdead, 7, 99);
            assert_eq!(ring.try_push(rec), PushOutcome::Stored(0));
            assert_eq!(ring.get(0), Some(rec));
            assert_eq!(ring.get(1), None);
        }
    }

    #[test]
    fn records_are_fifo_per_position() {
        for ring in both_rings(8, 1) {
            for i in 0..8u64 {
                ring.try_push(SyncRecord::simple(i as u32, i * 16));
            }
            for i in 0..8u64 {
                assert_eq!(ring.get(i).unwrap().thread, i as u32);
            }
        }
    }

    #[test]
    fn ring_reports_full_until_readers_advance() {
        for ring in both_rings(4, 2) {
            for i in 0..4 {
                assert!(matches!(
                    ring.try_push(SyncRecord::simple(0, i)),
                    PushOutcome::Stored(_)
                ));
            }
            assert_eq!(ring.try_push(SyncRecord::simple(0, 99)), PushOutcome::Full);
            // One reader advancing is not enough; the slowest reader gates reuse.
            ring.advance_reader(0);
            assert_eq!(ring.try_push(SyncRecord::simple(0, 99)), PushOutcome::Full);
            ring.advance_reader(1);
            assert!(matches!(
                ring.try_push(SyncRecord::simple(0, 99)),
                PushOutcome::Stored(4)
            ));
        }
    }

    #[test]
    fn wraparound_overwrites_consumed_slots_only() {
        for ring in both_rings(4, 1) {
            for i in 0..4 {
                ring.try_push(SyncRecord::simple(1, i));
            }
            for _ in 0..4 {
                ring.advance_reader(0);
            }
            for i in 4..8 {
                assert!(matches!(
                    ring.try_push(SyncRecord::simple(2, i)),
                    PushOutcome::Stored(_)
                ));
            }
            // Old positions are no longer published under their old sequence.
            assert_eq!(ring.get(0), None);
            assert_eq!(ring.get(5).unwrap().thread, 2);
        }
    }

    #[test]
    fn backlog_tracks_unconsumed_records() {
        for ring in both_rings(8, 1) {
            ring.try_push(SyncRecord::simple(0, 1));
            ring.try_push(SyncRecord::simple(0, 2));
            assert_eq!(ring.backlog(0), 2);
            ring.advance_reader(0);
            assert_eq!(ring.backlog(0), 1);
        }
    }

    #[test]
    fn cached_min_cursor_avoids_rescans_until_the_ring_looks_full() {
        let ring = RecordRing::new_spsc(8, 2);
        for i in 0..8 {
            ring.try_push(SyncRecord::simple(0, i));
        }
        // Eight unblocked pushes: the cache (0) never had to be refreshed.
        assert_eq!(ring.rescans(), 0);
        // A blocked push rescans once (and stays blocked).
        assert_eq!(ring.try_push(SyncRecord::simple(0, 8)), PushOutcome::Full);
        assert_eq!(ring.rescans(), 1);
        // Readers advance; the next push rescans once more, refreshes the
        // cache and succeeds...
        for _ in 0..4 {
            ring.advance_reader(0);
            ring.advance_reader(1);
        }
        assert!(matches!(
            ring.try_push(SyncRecord::simple(0, 8)),
            PushOutcome::Stored(8)
        ));
        assert_eq!(ring.rescans(), 2);
        // ...and the refreshed cache covers the following pushes scan-free.
        for i in 9..12 {
            assert!(matches!(
                ring.try_push(SyncRecord::simple(0, i)),
                PushOutcome::Stored(_)
            ));
        }
        assert_eq!(ring.rescans(), 2);
    }

    #[test]
    fn spsc_flag_is_reported() {
        assert!(!RecordRing::new(4, 1).is_spsc());
        assert!(RecordRing::new_spsc(4, 1).is_spsc());
    }

    #[test]
    fn get_blocking_waits_for_publication() {
        for (i, ring) in both_rings(8, 1).into_iter().enumerate() {
            let ring = Arc::new(ring);
            let r2 = Arc::clone(&ring);
            let handle = std::thread::spawn(move || r2.get_blocking(0, &waiter()).0);
            std::thread::sleep(std::time::Duration::from_millis(10));
            ring.try_push(SyncRecord::simple(5, 0x42 + i as u64));
            let rec = handle.join().unwrap();
            assert_eq!(rec.thread, 5);
            assert_eq!(rec.addr, 0x42 + i as u64);
        }
    }

    #[test]
    fn push_blocking_waits_for_reader() {
        for ring in both_rings(2, 1) {
            let ring = Arc::new(ring);
            ring.try_push(SyncRecord::simple(0, 0));
            ring.try_push(SyncRecord::simple(0, 1));
            let r2 = Arc::clone(&ring);
            let handle = std::thread::spawn(move || {
                let (pos, _stalls) = r2.push_blocking(SyncRecord::simple(0, 2), &waiter());
                pos
            });
            std::thread::sleep(std::time::Duration::from_millis(10));
            ring.advance_reader(0);
            assert_eq!(handle.join().unwrap(), 2);
        }
    }

    #[test]
    fn concurrent_producers_do_not_lose_records() {
        let ring = Arc::new(RecordRing::new(1024, 1));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let ring = Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    ring.push_blocking(SyncRecord::simple(t, i), &waiter());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ring.write_pos(), 800);
        // Every position holds a published record and per-thread order is
        // preserved (addresses are strictly increasing per thread).
        let mut last_addr = [None::<u64>; 4];
        for pos in 0..800 {
            let rec = ring.get(pos).expect("record published");
            let t = rec.thread as usize;
            if let Some(prev) = last_addr[t] {
                assert!(rec.addr > prev, "per-thread order violated");
            }
            last_addr[t] = Some(rec.addr);
        }
    }

    #[test]
    fn spsc_producer_with_lagging_consumer_round_trips() {
        // One producer, one consumer, a tiny ring: the producer is forced
        // through the full/rescan path repeatedly while the consumer drains.
        let ring = Arc::new(RecordRing::new_spsc(4, 1));
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..500u64 {
                    ring.push_blocking(SyncRecord::simple(0, i), &waiter());
                }
            })
        };
        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut sum = 0u64;
                for pos in 0..500u64 {
                    let (rec, _) = ring.get_blocking(pos, &waiter());
                    sum += rec.addr;
                    ring.advance_reader(0);
                }
                sum
            })
        };
        producer.join().unwrap();
        assert_eq!(consumer.join().unwrap(), (0..500).sum::<u64>());
        assert!(ring.rescans() > 0, "a 4-slot ring must have rescanned");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_capacity_panics() {
        let _ = RecordRing::new(3, 1);
    }

    #[test]
    #[should_panic(expected = "at least one reader")]
    fn zero_readers_panics() {
        let _ = RecordRing::new_spsc(4, 0);
    }
}
