//! A generic bounded descriptor ring: the transport half of the async
//! syscall gateway.
//!
//! [`RecordRing`](crate::ring::RecordRing) carries fixed-size
//! [`SyncRecord`](crate::ring::SyncRecord)s entirely in atomics, which is
//! what the agents' replication hot path needs — but syscall descriptors
//! carry owned data (payloads, paths), so the async gateway's
//! submission/completion queues need a ring that can move an arbitrary
//! `T` between exactly two threads.  [`DescRing`] is that ring, built on
//! the same three ideas as the PR 5 `RecordRing` hot path:
//!
//! * **Sequence-published slots** (the Vyukov bounded-queue discipline):
//!   every slot carries a sequence word; a producer claims position `pos`
//!   when the slot's sequence equals `pos`, deposits, and publishes by
//!   storing `pos + 1` with release ordering.  A consumer accepts the slot
//!   when it reads `pos + 1` and recycles it by storing `pos + capacity`.
//!   The payload itself travels through a per-slot mutex — uncontended by
//!   construction, because the sequence word hands each slot to exactly
//!   one side at a time — which keeps the ring inside `forbid(unsafe_code)`.
//! * **Separated cursors**: the producer and consumer positions live on
//!   their own cache lines (the slots are line-aligned too), so the two
//!   sides never false-share.
//! * **[`EventCount`] parking**: a consumer that finds the ring empty (or a
//!   producer that finds it full) can park on the corresponding event count
//!   instead of burning a core; every push posts `ready`, every pop posts
//!   `space`.  The wait discipline itself is the caller's
//!   [`Waiter`](crate::guards::Waiter) — the ring only provides the wake-up
//!   channels, mirroring how the agents compose `Waiter::wait_until_event`
//!   with the record rings.
//!
//! The claim protocol uses a compare-exchange on the cursor, so the ring
//! degrades gracefully if a caller violates the single-producer /
//! single-consumer contract — but the intended topology (one variant
//! thread, one gateway worker per port) is strictly SPSC.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::guards::EventCount;

/// One slot of a [`DescRing`]: the sequence word that hands the slot
/// between producer and consumer, plus the (uncontended) payload cell.
#[derive(Debug)]
#[repr(align(64))]
struct DescSlot<T> {
    /// Vyukov sequence word; see the module docs for the protocol.
    seq: AtomicU64,
    /// The payload in flight.  Only ever locked by the side the sequence
    /// word currently designates, so the mutex never blocks in steady
    /// state.
    value: Mutex<Option<T>>,
}

/// A cursor on its own cache line, so producer and consumer positions
/// never false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct Cursor(AtomicU64);

/// A bounded ring moving owned values from one producer thread to one
/// consumer thread, with park/notify channels for both directions.
#[derive(Debug)]
pub struct DescRing<T> {
    slots: Box<[DescSlot<T>]>,
    mask: u64,
    /// Next position the producer will claim.
    head: Cursor,
    /// Next position the consumer will claim.
    tail: Cursor,
    /// Posted after every push; consumers park here when the ring is empty.
    ready: EventCount,
    /// Posted after every pop; producers park here when the ring is full.
    space: EventCount,
}

impl<T> DescRing<T> {
    /// Creates a ring with at least `capacity` slots (rounded up to the next
    /// power of two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2).next_power_of_two();
        DescRing {
            slots: (0..capacity)
                .map(|i| DescSlot {
                    seq: AtomicU64::new(i as u64),
                    value: Mutex::new(None),
                })
                .collect(),
            mask: capacity as u64 - 1,
            head: Cursor::default(),
            tail: Cursor::default(),
            ready: EventCount::new(),
            space: EventCount::new(),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Entries currently deposited and not yet consumed (approximate under
    /// concurrency, exact when both sides are quiescent).
    pub fn len(&self) -> usize {
        let head = self.head.0.load(Ordering::Acquire);
        let tail = self.tail.0.load(Ordering::Acquire);
        head.saturating_sub(tail) as usize
    }

    /// Whether the ring currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the ring is currently full.
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity()
    }

    /// The event count posted after every push; a consumer that found the
    /// ring empty parks here (via `Waiter::wait_until_event`).
    pub fn ready_events(&self) -> &EventCount {
        &self.ready
    }

    /// The event count posted after every pop; a producer that found the
    /// ring full parks here.
    pub fn space_events(&self) -> &EventCount {
        &self.space
    }

    /// Attempts to deposit `value`; returns it back if the ring is full.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        self.push_inner(value, true)
    }

    /// [`try_push`](Self::try_push) without the `ready` notification.
    ///
    /// For producers that batch deposits and post one explicit
    /// `ready_events().notify()` per burst (or wake the consumer through a
    /// separate channel, as the polling gateway does): the notify's seq-cst
    /// fence is the dominant cost of an uncontended push, so burst
    /// producers should not pay it per entry.  A consumer parked on
    /// `ready_events` is still safe — its bounded park re-checks the ring —
    /// but may sleep up to the park backstop, so only elide the wake when
    /// some later notify (or another wake channel) covers the burst.
    pub fn try_push_quiet(&self, value: T) -> Result<(), T> {
        self.push_inner(value, false)
    }

    fn push_inner(&self, value: T, notify: bool) -> Result<(), T> {
        let mut pos = self.head.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                match self.head.0.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        *slot.value.lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
                        slot.seq.store(pos + 1, Ordering::Release);
                        if notify {
                            self.ready.notify();
                        }
                        return Ok(());
                    }
                    Err(current) => pos = current,
                }
            } else if seq < pos {
                // The consumer has not recycled this slot yet: full.
                return Err(value);
            } else {
                pos = self.head.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Attempts to take the oldest entry; `None` when the ring is empty.
    pub fn try_pop(&self) -> Option<T> {
        self.pop_inner(true)
    }

    /// [`try_pop`](Self::try_pop) without the `space` notification.
    ///
    /// The draining mirror of [`try_push_quiet`](Self::try_push_quiet):
    /// consumers that pop in bursts post one `space_events().notify()` per
    /// burst instead of one fence per entry.  A producer parked on a full
    /// ring still wakes via its bounded park even if the burst notify is
    /// missed.
    pub fn try_pop_quiet(&self) -> Option<T> {
        self.pop_inner(false)
    }

    fn pop_inner(&self, notify: bool) -> Option<T> {
        let mut pos = self.tail.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos + 1 {
                match self.tail.0.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let value = slot
                            .value
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .take()
                            .expect("a published slot always holds a value");
                        slot.seq
                            .store(pos + self.capacity() as u64, Ordering::Release);
                        if notify {
                            self.space.notify();
                        }
                        return Some(value);
                    }
                    Err(current) => pos = current,
                }
            } else if seq <= pos {
                // The producer has not published this slot yet: empty.
                return None;
            } else {
                pos = self.tail.0.load(Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guards::{WaitStrategy, Waiter};
    use std::sync::Arc;

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        assert_eq!(DescRing::<u32>::new(0).capacity(), 2);
        assert_eq!(DescRing::<u32>::new(3).capacity(), 4);
        assert_eq!(DescRing::<u32>::new(64).capacity(), 64);
    }

    #[test]
    fn push_pop_is_fifo() {
        let ring = DescRing::new(4);
        for i in 0..4 {
            ring.try_push(i).unwrap();
        }
        assert!(ring.is_full());
        assert_eq!(ring.try_push(99), Err(99));
        for i in 0..4 {
            assert_eq!(ring.try_pop(), Some(i));
        }
        assert!(ring.is_empty());
        assert_eq!(ring.try_pop(), None);
    }

    #[test]
    fn slots_recycle_across_many_wraps() {
        let ring = DescRing::new(2);
        for round in 0..1000u64 {
            ring.try_push(round).unwrap();
            assert_eq!(ring.try_pop(), Some(round));
        }
        assert!(ring.is_empty());
    }

    #[test]
    fn owned_payloads_move_through_intact() {
        let ring = DescRing::new(4);
        ring.try_push(String::from("hello ring")).unwrap();
        assert_eq!(ring.try_pop().as_deref(), Some("hello ring"));
    }

    #[test]
    fn spsc_stream_with_parked_sides_delivers_everything_in_order() {
        const N: u64 = 20_000;
        let ring: Arc<DescRing<u64>> = Arc::new(DescRing::new(8));
        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let waiter = Waiter::with_strategy(64, WaitStrategy::Adaptive);
                let mut expected = 0u64;
                while expected < N {
                    match ring.try_pop() {
                        Some(v) => {
                            assert_eq!(v, expected, "out-of-order delivery");
                            expected += 1;
                        }
                        None => {
                            waiter.wait_until_event(ring.ready_events(), || !ring.is_empty());
                        }
                    }
                }
            })
        };
        let waiter = Waiter::with_strategy(64, WaitStrategy::Adaptive);
        for i in 0..N {
            let mut value = i;
            while let Err(back) = ring.try_push(value) {
                value = back;
                waiter.wait_until_event(ring.space_events(), || !ring.is_full());
            }
        }
        consumer.join().unwrap();
        assert!(ring.is_empty());
    }
}
