//! Counters the agents maintain and the benchmark harness reads.
//!
//! [`SharedStats`] is striped into independent *lanes* of atomic counters.
//! Every agent call updates the lane of the calling thread's lane index
//! (`thread % lane_count`), so threads of different thread groups never
//! ping-pong the same counter cache line — the same per-thread-group
//! sharding discipline the monitor's rendezvous table uses.  [`snapshot`]
//! sums all lanes into one [`AgentStats`]; [`lane_snapshot`] exposes a single
//! lane for per-shard observation.
//!
//! [`snapshot`]: SharedStats::snapshot
//! [`lane_snapshot`]: SharedStats::lane_snapshot

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::guards::WaitTally;

/// Default number of counter lanes; matches the monitor's default shard
/// count scaled up so a 16-variant × many-thread run still spreads its
/// updates.
pub const DEFAULT_STAT_LANES: usize = 16;

/// A snapshot of an agent's counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgentStats {
    /// Sync ops recorded by the master variant.
    pub ops_recorded: u64,
    /// Sync ops replayed by slave variants (summed over all slaves).
    pub ops_replayed: u64,
    /// Times a slave thread had to wait before it could execute its next op.
    pub slave_stalls: u64,
    /// Times the master had to wait because a sync buffer was full.
    pub master_stalls: u64,
    /// Total spin-wait iterations executed by slaves while stalled.
    pub slave_spin_iterations: u64,
    /// `yield_now` calls executed by slaves while stalled (the adaptive
    /// waiter's second phase; the legacy strategy also reports its yields
    /// here).
    pub slave_yields: u64,
    /// Parking episodes (condvar blocks) of stalled slaves — the adaptive
    /// waiter's third phase.  Zero under [`WaitStrategy::SpinYield`].
    ///
    /// [`WaitStrategy::SpinYield`]: crate::guards::WaitStrategy::SpinYield
    pub slave_parks: u64,
    /// Spin-wait iterations of master threads stalled on a full sync buffer.
    #[serde(default)]
    pub master_spin_iterations: u64,
    /// `yield_now` calls of master threads stalled on a full sync buffer.
    #[serde(default)]
    pub master_yields: u64,
    /// Parking episodes of master threads stalled on a full sync buffer.
    pub master_parks: u64,
    /// Times a producer had to refresh its cached minimum-reader cursor by
    /// rescanning every slave cursor (see
    /// [`RecordRing::rescans`](crate::ring::RecordRing::rescans)).
    pub cursor_rescans: u64,
    /// Times two distinct sync-variable addresses hashed onto the same
    /// logical clock (wall-of-clocks only): false serialization.
    pub clock_collisions: u64,
    /// Replication points reached: sync ops at which the replication hook
    /// (deferred-comparison flushes, divergence-journal emissions) was
    /// consulted.  Counted once per hook invocation regardless of role.
    #[serde(default)]
    pub replication_points: u64,
}

impl AgentStats {
    /// Replays per recorded op; 1.0 per slave when every op was replayed.
    pub fn replay_ratio(&self) -> f64 {
        if self.ops_recorded == 0 {
            0.0
        } else {
            self.ops_replayed as f64 / self.ops_recorded as f64
        }
    }

    /// Stalls per replayed op — the agent-efficiency figure the paper's
    /// Figure 4 illustrates qualitatively.
    pub fn stall_rate(&self) -> f64 {
        if self.ops_replayed == 0 {
            0.0
        } else {
            self.slave_stalls as f64 / self.ops_replayed as f64
        }
    }

    /// Total wait iterations of any kind (spin + yield + park) executed by
    /// slaves.  The components are not time-commensurable (a park lasts up
    /// to 1 ms, a spin nanoseconds), so this sum is an episode count only —
    /// strategy comparisons must read the three component fields.
    pub fn slave_wait_iterations(&self) -> u64 {
        self.slave_spin_iterations + self.slave_yields + self.slave_parks
    }

    fn add(&mut self, other: &AgentStats) {
        self.ops_recorded += other.ops_recorded;
        self.ops_replayed += other.ops_replayed;
        self.slave_stalls += other.slave_stalls;
        self.master_stalls += other.master_stalls;
        self.slave_spin_iterations += other.slave_spin_iterations;
        self.slave_yields += other.slave_yields;
        self.slave_parks += other.slave_parks;
        self.master_spin_iterations += other.master_spin_iterations;
        self.master_yields += other.master_yields;
        self.master_parks += other.master_parks;
        self.cursor_rescans += other.cursor_rescans;
        self.clock_collisions += other.clock_collisions;
        self.replication_points += other.replication_points;
    }
}

/// One stripe of counters, padded to a cache line so adjacent lanes never
/// false-share (the whole point of the striping).
#[derive(Debug, Default)]
#[repr(align(64))]
struct Lane {
    ops_recorded: AtomicU64,
    ops_replayed: AtomicU64,
    slave_stalls: AtomicU64,
    master_stalls: AtomicU64,
    slave_spin_iterations: AtomicU64,
    slave_yields: AtomicU64,
    slave_parks: AtomicU64,
    master_spin_iterations: AtomicU64,
    master_yields: AtomicU64,
    master_parks: AtomicU64,
    clock_collisions: AtomicU64,
    replication_points: AtomicU64,
}

impl Lane {
    fn snapshot(&self) -> AgentStats {
        AgentStats {
            ops_recorded: self.ops_recorded.load(Ordering::Relaxed),
            ops_replayed: self.ops_replayed.load(Ordering::Relaxed),
            slave_stalls: self.slave_stalls.load(Ordering::Relaxed),
            master_stalls: self.master_stalls.load(Ordering::Relaxed),
            slave_spin_iterations: self.slave_spin_iterations.load(Ordering::Relaxed),
            slave_yields: self.slave_yields.load(Ordering::Relaxed),
            slave_parks: self.slave_parks.load(Ordering::Relaxed),
            master_spin_iterations: self.master_spin_iterations.load(Ordering::Relaxed),
            master_yields: self.master_yields.load(Ordering::Relaxed),
            master_parks: self.master_parks.load(Ordering::Relaxed),
            // Rescans live in the rings, not the lanes; the owning agent
            // adds them into its own snapshot.
            cursor_rescans: 0,
            clock_collisions: self.clock_collisions.load(Ordering::Relaxed),
            replication_points: self.replication_points.load(Ordering::Relaxed),
        }
    }
}

/// Thread-safe, lane-striped counter block shared by an agent's threads.
///
/// Every count method takes the caller's `lane` hint — agents pass the
/// logical thread index, which is mapped onto a lane by modulo.
#[derive(Debug)]
pub struct SharedStats {
    lanes: Box<[Lane]>,
}

impl Default for SharedStats {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedStats {
    /// Creates a counter block with [`DEFAULT_STAT_LANES`] lanes.
    pub fn new() -> Self {
        Self::with_lanes(DEFAULT_STAT_LANES)
    }

    /// Creates a counter block with `lanes` stripes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn with_lanes(lanes: usize) -> Self {
        assert!(lanes > 0, "need at least one stat lane");
        SharedStats {
            lanes: (0..lanes).map(|_| Lane::default()).collect(),
        }
    }

    /// Number of counter lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    fn lane(&self, lane: usize) -> &Lane {
        &self.lanes[lane % self.lanes.len()]
    }

    /// Counts one recorded op.
    pub fn count_record(&self, lane: usize) {
        self.lane(lane).ops_recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one replayed op.
    pub fn count_replay(&self, lane: usize) {
        self.lane(lane).ops_replayed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one slave stall (a wait that did not succeed immediately).
    pub fn count_slave_stall(&self, lane: usize) {
        self.lane(lane).slave_stalls.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one master stall (buffer full).
    pub fn count_master_stall(&self, lane: usize) {
        self.lane(lane)
            .master_stalls
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` spin iterations to the slave spin counter.
    pub fn add_spin_iterations(&self, lane: usize, n: u64) {
        self.lane(lane)
            .slave_spin_iterations
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Folds a slave-side [`WaitTally`] into the stall taxonomy and, when
    /// the wait did not succeed immediately, counts one slave stall.
    pub fn count_slave_wait(&self, lane: usize, tally: WaitTally) {
        if !tally.stalled() {
            return;
        }
        let lane = self.lane(lane);
        lane.slave_stalls.fetch_add(1, Ordering::Relaxed);
        if tally.spins > 0 {
            lane.slave_spin_iterations
                .fetch_add(tally.spins, Ordering::Relaxed);
        }
        if tally.yields > 0 {
            lane.slave_yields.fetch_add(tally.yields, Ordering::Relaxed);
        }
        if tally.parks > 0 {
            lane.slave_parks.fetch_add(tally.parks, Ordering::Relaxed);
        }
    }

    /// Counts one master stall (buffer full) and folds its [`WaitTally`]
    /// into the master side of the stall taxonomy — the same
    /// spin/yield/park split the slave side gets.
    pub fn count_master_wait(&self, lane: usize, tally: WaitTally) {
        let lane = self.lane(lane);
        lane.master_stalls.fetch_add(1, Ordering::Relaxed);
        if tally.spins > 0 {
            lane.master_spin_iterations
                .fetch_add(tally.spins, Ordering::Relaxed);
        }
        if tally.yields > 0 {
            lane.master_yields
                .fetch_add(tally.yields, Ordering::Relaxed);
        }
        if tally.parks > 0 {
            lane.master_parks.fetch_add(tally.parks, Ordering::Relaxed);
        }
    }

    /// Counts one replication point: a sync op at which the injected
    /// replication hook was consulted.
    pub fn count_replication_point(&self, lane: usize) {
        self.lane(lane)
            .replication_points
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one hash collision between distinct addresses on one clock.
    pub fn count_clock_collision(&self, lane: usize) {
        self.lane(lane)
            .clock_collisions
            .fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot of one counter lane — the per-shard view
    /// agents expose instead of a single global counter.
    pub fn lane_snapshot(&self, lane: usize) -> AgentStats {
        self.lane(lane).snapshot()
    }

    /// Takes a consistent-enough snapshot summed over all lanes.
    pub fn snapshot(&self) -> AgentStats {
        let mut total = AgentStats::default();
        for lane in self.lanes.iter() {
            total.add(&lane.snapshot());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_into_snapshot() {
        let s = SharedStats::new();
        s.count_record(0);
        s.count_record(0);
        s.count_replay(1);
        s.count_slave_stall(2);
        s.count_master_stall(3);
        s.add_spin_iterations(4, 10);
        s.count_clock_collision(5);
        s.count_replication_point(6);
        s.count_replication_point(6);
        s.count_replication_point(7);
        let snap = s.snapshot();
        assert_eq!(snap.ops_recorded, 2);
        assert_eq!(snap.ops_replayed, 1);
        assert_eq!(snap.slave_stalls, 1);
        assert_eq!(snap.master_stalls, 1);
        assert_eq!(snap.slave_spin_iterations, 10);
        assert_eq!(snap.clock_collisions, 1);
        assert_eq!(snap.replication_points, 3);
    }

    #[test]
    fn lanes_isolate_updates_and_sum_globally() {
        let s = SharedStats::with_lanes(4);
        assert_eq!(s.lane_count(), 4);
        s.count_record(0);
        s.count_record(1);
        s.count_record(5); // lane 5 % 4 == 1
        assert_eq!(s.lane_snapshot(0).ops_recorded, 1);
        assert_eq!(s.lane_snapshot(1).ops_recorded, 2);
        assert_eq!(s.lane_snapshot(2).ops_recorded, 0);
        assert_eq!(s.snapshot().ops_recorded, 3);
    }

    #[test]
    fn wait_tallies_feed_the_stall_taxonomy() {
        let s = SharedStats::with_lanes(2);
        s.count_slave_wait(
            0,
            WaitTally {
                spins: 10,
                yields: 3,
                parks: 2,
            },
        );
        // An immediate wait counts nothing, not even a stall.
        s.count_slave_wait(0, WaitTally::default());
        s.count_master_wait(
            1,
            WaitTally {
                spins: 5,
                yields: 0,
                parks: 4,
            },
        );
        let snap = s.snapshot();
        assert_eq!(snap.slave_stalls, 1);
        assert_eq!(snap.slave_spin_iterations, 10);
        assert_eq!(snap.slave_yields, 3);
        assert_eq!(snap.slave_parks, 2);
        assert_eq!(snap.master_stalls, 1);
        assert_eq!(snap.master_spin_iterations, 5);
        assert_eq!(snap.master_yields, 0);
        assert_eq!(snap.master_parks, 4);
        assert_eq!(snap.slave_wait_iterations(), 15);
    }

    #[test]
    fn ratios_handle_zero_denominators() {
        let empty = AgentStats::default();
        assert_eq!(empty.replay_ratio(), 0.0);
        assert_eq!(empty.stall_rate(), 0.0);
    }

    #[test]
    fn replay_ratio_counts_all_slaves() {
        let s = AgentStats {
            ops_recorded: 10,
            ops_replayed: 30,
            ..Default::default()
        };
        // Three slaves each replayed all ten ops.
        assert!((s.replay_ratio() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn stall_rate_is_per_replayed_op() {
        let s = AgentStats {
            ops_recorded: 10,
            ops_replayed: 20,
            slave_stalls: 5,
            ..Default::default()
        };
        assert!((s.stall_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one stat lane")]
    fn zero_lanes_panics() {
        let _ = SharedStats::with_lanes(0);
    }
}
