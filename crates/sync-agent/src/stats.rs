//! Counters the agents maintain and the benchmark harness reads.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// A snapshot of an agent's counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgentStats {
    /// Sync ops recorded by the master variant.
    pub ops_recorded: u64,
    /// Sync ops replayed by slave variants (summed over all slaves).
    pub ops_replayed: u64,
    /// Times a slave thread had to wait before it could execute its next op.
    pub slave_stalls: u64,
    /// Times the master had to wait because a sync buffer was full.
    pub master_stalls: u64,
    /// Total spin-wait iterations executed by slaves while stalled.
    pub slave_spin_iterations: u64,
    /// Times two distinct sync-variable addresses hashed onto the same
    /// logical clock (wall-of-clocks only): false serialization.
    pub clock_collisions: u64,
}

impl AgentStats {
    /// Replays per recorded op; 1.0 per slave when every op was replayed.
    pub fn replay_ratio(&self) -> f64 {
        if self.ops_recorded == 0 {
            0.0
        } else {
            self.ops_replayed as f64 / self.ops_recorded as f64
        }
    }

    /// Stalls per replayed op — the agent-efficiency figure the paper's
    /// Figure 4 illustrates qualitatively.
    pub fn stall_rate(&self) -> f64 {
        if self.ops_replayed == 0 {
            0.0
        } else {
            self.slave_stalls as f64 / self.ops_replayed as f64
        }
    }
}

/// Thread-safe counter block shared by an agent's threads.
#[derive(Debug, Default)]
pub struct SharedStats {
    ops_recorded: AtomicU64,
    ops_replayed: AtomicU64,
    slave_stalls: AtomicU64,
    master_stalls: AtomicU64,
    slave_spin_iterations: AtomicU64,
    clock_collisions: AtomicU64,
}

impl SharedStats {
    /// Creates a zeroed counter block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one recorded op.
    pub fn count_record(&self) {
        self.ops_recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one replayed op.
    pub fn count_replay(&self) {
        self.ops_replayed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one slave stall (a wait that did not succeed immediately).
    pub fn count_slave_stall(&self) {
        self.slave_stalls.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one master stall (buffer full).
    pub fn count_master_stall(&self) {
        self.master_stalls.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` spin iterations to the slave spin counter.
    pub fn add_spin_iterations(&self, n: u64) {
        self.slave_spin_iterations.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one hash collision between distinct addresses on one clock.
    pub fn count_clock_collision(&self) {
        self.clock_collisions.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> AgentStats {
        AgentStats {
            ops_recorded: self.ops_recorded.load(Ordering::Relaxed),
            ops_replayed: self.ops_replayed.load(Ordering::Relaxed),
            slave_stalls: self.slave_stalls.load(Ordering::Relaxed),
            master_stalls: self.master_stalls.load(Ordering::Relaxed),
            slave_spin_iterations: self.slave_spin_iterations.load(Ordering::Relaxed),
            clock_collisions: self.clock_collisions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_into_snapshot() {
        let s = SharedStats::new();
        s.count_record();
        s.count_record();
        s.count_replay();
        s.count_slave_stall();
        s.count_master_stall();
        s.add_spin_iterations(10);
        s.count_clock_collision();
        let snap = s.snapshot();
        assert_eq!(snap.ops_recorded, 2);
        assert_eq!(snap.ops_replayed, 1);
        assert_eq!(snap.slave_stalls, 1);
        assert_eq!(snap.master_stalls, 1);
        assert_eq!(snap.slave_spin_iterations, 10);
        assert_eq!(snap.clock_collisions, 1);
    }

    #[test]
    fn ratios_handle_zero_denominators() {
        let empty = AgentStats::default();
        assert_eq!(empty.replay_ratio(), 0.0);
        assert_eq!(empty.stall_rate(), 0.0);
    }

    #[test]
    fn replay_ratio_counts_all_slaves() {
        let s = AgentStats {
            ops_recorded: 10,
            ops_replayed: 30,
            ..Default::default()
        };
        // Three slaves each replayed all ten ops.
        assert!((s.replay_ratio() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn stall_rate_is_per_replayed_op() {
        let s = AgentStats {
            ops_recorded: 10,
            ops_replayed: 20,
            slave_stalls: 5,
            ..Default::default()
        };
        assert!((s.stall_rate() - 0.25).abs() < 1e-9);
    }
}
