//! Master/2-slave smoke tests for every replication agent.
//!
//! Each test drives one agent with a master variant and two slave variants,
//! two logical threads per variant, all running as real OS threads at once.
//! The scenario mixes contended (shared-address) and private sync ops, the
//! mixture that distinguishes the three ordering disciplines (§4.5 of the
//! paper).  A bounded-time watchdog turns a replay deadlock — the classic
//! failure mode of an ordering agent — into a test failure instead of a hung
//! test binary.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use mvee_sync_agent::agents::{build_agent, AgentKind};
use mvee_sync_agent::context::{AgentConfig, SyncContext, VariantRole};
use mvee_sync_agent::SyncAgent;

/// Worker threads per variant.
const THREADS: usize = 2;
/// Sync ops each thread performs.
const OPS_PER_THREAD: u64 = 300;
/// Total variants: one master plus two slaves.
const VARIANTS: usize = 3;
/// How long the watchdog waits before declaring a deadlock.
const WATCHDOG: Duration = Duration::from_secs(30);

/// The deterministic per-thread op sequence: alternates between one address
/// shared by both threads (a contended lock) and a thread-private one, so the
/// recorded order genuinely interleaves threads.
fn op_address(thread: usize, op: u64) -> u64 {
    if op.is_multiple_of(2) {
        0x1000 // shared synchronization variable
    } else {
        0x2000 + (thread as u64) * 8 // thread-private variable
    }
}

/// Runs the master and both slaves concurrently and returns the agent for
/// stats inspection.  Panics via the watchdog if the run deadlocks.
fn run_master_two_slaves(kind: AgentKind) -> Arc<Box<dyn SyncAgent>> {
    let config = AgentConfig::default()
        .with_variants(VARIANTS)
        .with_threads(THREADS)
        .with_buffer_capacity(1024);
    let agent: Arc<Box<dyn SyncAgent>> = Arc::new(build_agent(kind, config));

    let scenario_agent = Arc::clone(&agent);
    let (done_tx, done_rx) = mpsc::channel();
    let scenario = thread::spawn(move || {
        let mut workers = Vec::new();
        for variant in 0..VARIANTS {
            for t in 0..THREADS {
                let agent = Arc::clone(&scenario_agent);
                workers.push(thread::spawn(move || {
                    let ctx = SyncContext::new(VariantRole::from_variant_index(variant), t);
                    for op in 0..OPS_PER_THREAD {
                        let addr = op_address(t, op);
                        agent.before_sync_op(&ctx, addr);
                        agent.after_sync_op(&ctx, addr);
                    }
                }));
            }
        }
        for worker in workers {
            worker.join().expect("worker thread panicked");
        }
        let _ = done_tx.send(());
    });

    match done_rx.recv_timeout(WATCHDOG) {
        Ok(()) => {
            scenario.join().expect("scenario thread panicked");
            agent
        }
        Err(_) => panic!(
            "{:?} agent deadlocked: master/2-slave run did not finish within {WATCHDOG:?}",
            kind
        ),
    }
}

fn assert_replication_invariants(kind: AgentKind) {
    let agent = run_master_two_slaves(kind);
    let stats = agent.stats();
    let expected_recorded = (THREADS as u64) * OPS_PER_THREAD;
    assert_eq!(
        stats.ops_recorded, expected_recorded,
        "{kind:?}: master must record every op exactly once"
    );
    assert!(
        stats.ops_replayed >= stats.ops_recorded,
        "{kind:?}: with two slaves, replayed ops ({}) must be at least the recorded ops ({})",
        stats.ops_replayed,
        stats.ops_recorded
    );
}

#[test]
fn total_order_agent_master_two_slaves_smoke() {
    assert_replication_invariants(AgentKind::TotalOrder);
}

#[test]
fn partial_order_agent_master_two_slaves_smoke() {
    assert_replication_invariants(AgentKind::PartialOrder);
}

#[test]
fn wall_of_clocks_agent_master_two_slaves_smoke() {
    assert_replication_invariants(AgentKind::WallOfClocks);
}

#[test]
fn null_agent_counts_ops_and_never_blocks() {
    let agent = run_master_two_slaves(AgentKind::Null);
    let stats = agent.stats();
    let per_variant = (THREADS as u64) * OPS_PER_THREAD;
    assert_eq!(stats.ops_recorded, per_variant);
    // Two slave variants pass through the agent without any ordering; every
    // slave op is still counted as replayed.
    assert_eq!(stats.ops_replayed, 2 * per_variant);
    assert_eq!(stats.slave_stalls, 0, "the null agent never stalls a slave");
}
