//! Master/2-slave smoke tests for every replication agent.
//!
//! Each test drives one agent with a master variant and two slave variants,
//! two logical threads per variant, all running as real OS threads at once.
//! The scenario mixes contended (shared-address) and private sync ops, the
//! mixture that distinguishes the three ordering disciplines (§4.5 of the
//! paper).  A bounded-time watchdog turns a replay deadlock — the classic
//! failure mode of an ordering agent — into a test failure instead of a hung
//! test binary.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use mvee_sync_agent::agents::{build_agent, AgentKind};
use mvee_sync_agent::context::{AgentConfig, SyncContext, VariantRole};
use mvee_sync_agent::SyncAgent;

/// Worker threads per variant.
const THREADS: usize = 2;
/// Sync ops each thread performs.
const OPS_PER_THREAD: u64 = 300;
/// Total variants: one master plus two slaves.
const VARIANTS: usize = 3;
/// How long the watchdog waits before declaring a deadlock.
const WATCHDOG: Duration = Duration::from_secs(30);

/// The deterministic per-thread op sequence: alternates between one address
/// shared by both threads (a contended lock) and a thread-private one, so the
/// recorded order genuinely interleaves threads.
fn op_address(thread: usize, op: u64) -> u64 {
    if op.is_multiple_of(2) {
        0x1000 // shared synchronization variable
    } else {
        0x2000 + (thread as u64) * 8 // thread-private variable
    }
}

/// Runs `variants` variants × `threads` threads concurrently through `ops`
/// sync ops each and returns the agent for stats inspection.  Panics via the
/// watchdog if the run deadlocks.
fn run_scenario(
    kind: AgentKind,
    variants: usize,
    threads: usize,
    ops: u64,
) -> Arc<Box<dyn SyncAgent>> {
    let config = AgentConfig::default()
        .with_variants(variants)
        .with_threads(threads)
        .with_buffer_capacity(1024);
    let agent: Arc<Box<dyn SyncAgent>> = Arc::new(build_agent(kind, config));

    let scenario_agent = Arc::clone(&agent);
    let (done_tx, done_rx) = mpsc::channel();
    let scenario = thread::spawn(move || {
        let mut workers = Vec::new();
        for variant in 0..variants {
            for t in 0..threads {
                let agent = Arc::clone(&scenario_agent);
                workers.push(thread::spawn(move || {
                    let ctx = SyncContext::new(VariantRole::from_variant_index(variant), t);
                    for op in 0..ops {
                        let addr = op_address(t, op);
                        agent.before_sync_op(&ctx, addr);
                        agent.after_sync_op(&ctx, addr);
                    }
                }));
            }
        }
        for worker in workers {
            worker.join().expect("worker thread panicked");
        }
        let _ = done_tx.send(());
    });

    match done_rx.recv_timeout(WATCHDOG) {
        Ok(()) => {
            scenario.join().expect("scenario thread panicked");
            agent
        }
        Err(_) => panic!(
            "{:?} agent deadlocked: {variants}-variant x {threads}-thread run \
             did not finish within {WATCHDOG:?}; stats so far: {:?}",
            kind,
            agent.stats()
        ),
    }
}

/// Runs the master and both slaves concurrently and returns the agent for
/// stats inspection.  Panics via the watchdog if the run deadlocks.
fn run_master_two_slaves(kind: AgentKind) -> Arc<Box<dyn SyncAgent>> {
    run_scenario(kind, VARIANTS, THREADS, OPS_PER_THREAD)
}

fn assert_replication_invariants(kind: AgentKind) {
    let agent = run_master_two_slaves(kind);
    let stats = agent.stats();
    let expected_recorded = (THREADS as u64) * OPS_PER_THREAD;
    assert_eq!(
        stats.ops_recorded, expected_recorded,
        "{kind:?}: master must record every op exactly once"
    );
    assert!(
        stats.ops_replayed >= stats.ops_recorded,
        "{kind:?}: with two slaves, replayed ops ({}) must be at least the recorded ops ({})",
        stats.ops_replayed,
        stats.ops_recorded
    );
}

#[test]
fn total_order_agent_master_two_slaves_smoke() {
    assert_replication_invariants(AgentKind::TotalOrder);
}

#[test]
fn partial_order_agent_master_two_slaves_smoke() {
    assert_replication_invariants(AgentKind::PartialOrder);
}

#[test]
fn wall_of_clocks_agent_master_two_slaves_smoke() {
    assert_replication_invariants(AgentKind::WallOfClocks);
}

#[test]
fn wall_of_clocks_eight_variants_sixteen_threads_smoke() {
    // The many-variant (8-variant × 16-thread) configuration the monitor
    // sharding refactor targets: one master, seven slaves, 128 OS threads.
    const STRESS_VARIANTS: usize = 8;
    const STRESS_THREADS: usize = 16;
    const STRESS_OPS: u64 = 100;
    let agent = run_scenario(
        AgentKind::WallOfClocks,
        STRESS_VARIANTS,
        STRESS_THREADS,
        STRESS_OPS,
    );
    let stats = agent.stats();
    let expected_recorded = (STRESS_THREADS as u64) * STRESS_OPS;
    assert_eq!(stats.ops_recorded, expected_recorded);
    // Seven slaves each replay the full recording.
    assert_eq!(
        stats.ops_replayed,
        (STRESS_VARIANTS as u64 - 1) * expected_recorded
    );
}

#[test]
fn poisoning_unblocks_a_stalled_slave_replay() {
    // A slave thread blocked on a recording that will never continue (the
    // master died after divergence) must return promptly once the agent is
    // poisoned — the deadlock the monitor's poison hook exists to prevent.
    for kind in [
        AgentKind::TotalOrder,
        AgentKind::PartialOrder,
        AgentKind::WallOfClocks,
    ] {
        let config = AgentConfig::default().with_variants(2).with_threads(2);
        let agent: Arc<Box<dyn SyncAgent>> = Arc::new(build_agent(kind, config));
        let blocked = Arc::clone(&agent);
        let (done_tx, done_rx) = mpsc::channel();
        let slave = thread::spawn(move || {
            let ctx = SyncContext::new(VariantRole::Slave { index: 0 }, 0);
            // Nothing was ever recorded: this blocks until poisoned.
            blocked.before_sync_op(&ctx, 0x1000);
            blocked.after_sync_op(&ctx, 0x1000);
            let _ = done_tx.send(());
        });
        thread::sleep(Duration::from_millis(50));
        agent.poison();
        assert!(agent.is_poisoned(), "{kind:?}");
        done_rx
            .recv_timeout(Duration::from_secs(10))
            .unwrap_or_else(|_| panic!("{kind:?}: poisoned slave stayed blocked"));
        slave.join().expect("slave thread panicked");
        // A poisoned bail-out replays nothing.
        assert_eq!(agent.stats().ops_replayed, 0, "{kind:?}");
    }
}

#[test]
fn null_agent_counts_ops_and_never_blocks() {
    let agent = run_master_two_slaves(AgentKind::Null);
    let stats = agent.stats();
    let per_variant = (THREADS as u64) * OPS_PER_THREAD;
    assert_eq!(stats.ops_recorded, per_variant);
    // Two slave variants pass through the agent without any ordering; every
    // slave op is still counted as replayed.
    assert_eq!(stats.ops_replayed, 2 * per_variant);
    assert_eq!(stats.slave_stalls, 0, "the null agent never stalls a slave");
}

/// Batched (batch ≥ 2) configurations of the post-divergence deadlock
/// scenario: the full monitor + agent pair, with deferred comparisons in
/// flight when the MVEE dies.  Divergence must poison the rendezvous table
/// *and* the agent, so that threads blocked in a batch flush and threads
/// blocked in a replay wait both return within the watchdog window.
mod batched_shutdown {
    use super::*;
    use mvee_core::mvee::Mvee;
    use mvee_kernel::syscall::{SyscallArg, SyscallRequest, Sysno};

    /// Watchdog for the batched shutdown scenarios: generous against
    /// scheduler noise, tiny against the 400 s CI stalls it guards.
    const BATCH_WATCHDOG: Duration = Duration::from_secs(20);

    fn mprotect(len: i64) -> SyscallRequest {
        SyscallRequest::new(Sysno::Mprotect)
            .with_arg(SyscallArg::Pointer(0x7a00_0000))
            .with_int(len)
    }

    fn batched_mvee(batch: usize, timeout: Duration) -> Arc<Mvee> {
        Arc::new(
            Mvee::builder()
                .variants(2)
                .threads(2)
                .agent(AgentKind::WallOfClocks)
                .batch(batch)
                .lockstep_timeout(timeout)
                .manual_clock(true)
                .build(),
        )
    }

    /// Runs `f` on a scenario thread and panics if it outlives the watchdog.
    fn with_watchdog<T: Send + 'static>(label: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
        let (done_tx, done_rx) = mpsc::channel();
        let scenario = thread::spawn(move || {
            let _ = done_tx.send(f());
        });
        match done_rx.recv_timeout(BATCH_WATCHDOG) {
            Ok(value) => {
                scenario.join().expect("scenario thread panicked");
                value
            }
            Err(_) => panic!("{label}: batched shutdown scenario deadlocked ({BATCH_WATCHDOG:?})"),
        }
    }

    #[test]
    fn divergence_mid_batch_poisons_and_unblocks_batched_waiters() {
        for batch in [2usize, 8] {
            let mvee = batched_mvee(batch, Duration::from_secs(10));
            let label = format!("mid-batch divergence, batch={batch}");
            let m = Arc::clone(&mvee);
            let (master_r, slave_r) = with_watchdog(&label, move || {
                // Both variants defer mprotect comparisons; the slave's
                // second one carries different compared arguments.  A
                // synchronous write forces both flushes: the mismatch lands
                // mid-batch and must shut the whole MVEE down promptly —
                // neither side may sit out its (here: 10 s) lockstep
                // timeout, let alone the watchdog.
                let mm = Arc::clone(&m);
                let slave = thread::spawn(move || {
                    let port = mm.thread_port(1, 0);
                    for len in [4096i64, 666, 4096] {
                        port.syscall(&mprotect(len))?;
                    }
                    port.syscall(
                        &SyscallRequest::new(Sysno::Write)
                            .with_fd(1)
                            .with_payload(b"x"),
                    )
                });
                let port = m.thread_port(0, 0);
                let master = (|| {
                    for _ in 0..3 {
                        port.syscall(&mprotect(4096))?;
                    }
                    port.syscall(
                        &SyscallRequest::new(Sysno::Write)
                            .with_fd(1)
                            .with_payload(b"x"),
                    )
                })();
                (master, slave.join().unwrap())
            });
            assert!(
                master_r.is_err() || slave_r.is_err(),
                "batch={batch}: the mismatch must surface"
            );
            assert!(mvee.monitor().has_diverged(), "batch={batch}");
            assert!(
                mvee.agent().is_poisoned(),
                "batch={batch}: divergence must poison the agent"
            );
            assert_eq!(
                mvee.monitor().live_deferred(),
                0,
                "batch={batch}: pending comparisons must be abandoned"
            );
            let report = mvee.divergence().expect("divergence report");
            assert_eq!(
                report.sequence, 1,
                "batch={batch}: must blame the exact slot"
            );
        }
    }

    #[test]
    fn exit_mid_batch_poisons_and_unblocks_batched_waiters_and_replay() {
        for batch in [2usize, 8] {
            // Short lockstep timeout: the "exited" peer is detected by the
            // rendezvous deadline, well inside the watchdog window.
            let mvee = batched_mvee(batch, Duration::from_millis(400));
            let label = format!("mid-batch exit, batch={batch}");

            // A slave thread blocks in a replay wait for a recording that
            // will never continue — the deadlock the poison hook prevents.
            let (replay_tx, replay_rx) = mpsc::channel();
            let blocked = Arc::clone(mvee.agent());
            let replay = thread::spawn(move || {
                let ctx = SyncContext::new(VariantRole::Slave { index: 0 }, 1);
                blocked.before_sync_op(&ctx, 0x1000);
                blocked.after_sync_op(&ctx, 0x1000);
                let _ = replay_tx.send(());
            });

            let m = Arc::clone(&mvee);
            let master = with_watchdog(&label, move || {
                // The slave variant "exits mid-batch": it defers one
                // comparison and then its thread is gone, never flushing.
                // It runs concurrently with the master (its ordered call
                // needs the master's published outcome to proceed).
                let mm = Arc::clone(&m);
                let slave = thread::spawn(move || {
                    let _ = mm.thread_port(1, 0).syscall(&mprotect(4096));
                });
                // The master fills and flushes a batch; the flush blocks on
                // the vanished peer, times out, and must convert into a
                // divergence instead of a hang.
                let port = m.thread_port(0, 0);
                let result = (|| {
                    for _ in 0..2 {
                        port.syscall(&mprotect(4096))?;
                    }
                    port.syscall(
                        &SyscallRequest::new(Sysno::Write)
                            .with_fd(1)
                            .with_payload(b"x"),
                    )
                })();
                slave.join().expect("slave thread panicked");
                result
            });
            assert!(master.is_err(), "batch={batch}: the flush must fail");
            assert!(mvee.monitor().has_diverged(), "batch={batch}");
            assert!(mvee.agent().is_poisoned(), "batch={batch}");
            // The poison must also release the replay-blocked slave thread.
            replay_rx
                .recv_timeout(BATCH_WATCHDOG)
                .unwrap_or_else(|_| panic!("batch={batch}: poisoned replay stayed blocked"));
            replay.join().expect("replay thread panicked");
            assert_eq!(mvee.monitor().live_deferred(), 0, "batch={batch}");
        }
    }
}
