//! Regression tests for the adaptive waiter's park/wake protocol.
//!
//! The failure mode these tests pin down is a *lost wake-up*: a slave (or
//! master) escalates through spin and yield, parks on a ring or clock-wall
//! event count, and then misses the notification that should have woken it —
//! a push, a cursor advance, or poison.  Each scenario drives a thread into
//! a parked state (tiny spin budget, long idle period), delivers exactly the
//! wake-up under test, and requires completion well inside a watchdog.  A
//! protocol regression turns these tests into deterministic timeouts with a
//! description of the stuck configuration, not flaky hangs.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use mvee_sync_agent::agents::{build_agent, AgentKind};
use mvee_sync_agent::context::{AgentConfig, SyncContext, VariantRole};
use mvee_sync_agent::guards::WaitStrategy;
use mvee_sync_agent::SyncAgent;

/// Generous watchdog: a healthy wake costs microseconds (or at worst one
/// 1 ms park-timeout backstop); seconds of margin absorb CI noise.
const WATCHDOG: Duration = Duration::from_secs(20);

/// How long the waking thread sleeps before delivering the wake-up, so the
/// waiter is parked (not spinning) when it arrives.
const PARK_SETTLE: Duration = Duration::from_millis(50);

/// A tiny spin budget so waits escalate to parking almost immediately.
fn parky_config(variants: usize) -> AgentConfig {
    AgentConfig::default()
        .with_variants(variants)
        .with_threads(2)
        .with_buffer_capacity(8)
        .with_wait_strategy(WaitStrategy::Adaptive)
}

/// Runs `blocked` on its own thread and `wake` on this one (after
/// `PARK_SETTLE`); panics unless `blocked` finishes within the watchdog.
fn assert_wakes<T: Send + 'static>(
    what: &str,
    blocked: impl FnOnce() -> T + Send + 'static,
    wake: impl FnOnce(),
) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = thread::spawn(move || {
        let result = blocked();
        let _ = tx.send(());
        result
    });
    thread::sleep(PARK_SETTLE);
    let start = Instant::now();
    wake();
    match rx.recv_timeout(WATCHDOG) {
        Ok(()) => {
            let woke_after = start.elapsed();
            assert!(
                woke_after < WATCHDOG / 2,
                "{what}: woke only after {woke_after:?}"
            );
            handle.join().expect("blocked thread panicked")
        }
        Err(_) => panic!("{what}: parked thread missed its wake-up ({WATCHDOG:?} watchdog)"),
    }
}

/// A slave parked on an *empty* ring must wake when the master pushes.
#[test]
fn parked_slave_wakes_on_push() {
    for kind in AgentKind::replication_agents() {
        let agent: Arc<Box<dyn SyncAgent>> = Arc::new(build_agent(kind, parky_config(2)));
        let slave_agent = Arc::clone(&agent);
        assert_wakes(
            &format!("{kind:?} slave/push"),
            move || {
                let ctx = SyncContext::new(VariantRole::Slave { index: 0 }, 0);
                slave_agent.before_sync_op(&ctx, 0x5000);
                slave_agent.after_sync_op(&ctx, 0x5000);
            },
            || {
                let master = SyncContext::new(VariantRole::Master, 0);
                agent.before_sync_op(&master, 0x4000);
                agent.after_sync_op(&master, 0x4000);
            },
        );
        assert_eq!(agent.stats().ops_replayed, 1, "{kind:?}");
        assert!(
            agent.stats().slave_parks > 0,
            "{kind:?}: a {PARK_SETTLE:?} wait must have parked, not spun: {:?}",
            agent.stats()
        );
    }
}

/// A slave parked on an empty ring must wake on poison and bail out cleanly.
#[test]
fn parked_slave_wakes_on_poison() {
    for kind in AgentKind::replication_agents() {
        let agent: Arc<Box<dyn SyncAgent>> = Arc::new(build_agent(kind, parky_config(2)));
        let slave_agent = Arc::clone(&agent);
        assert_wakes(
            &format!("{kind:?} slave/poison"),
            move || {
                let ctx = SyncContext::new(VariantRole::Slave { index: 0 }, 0);
                slave_agent.before_sync_op(&ctx, 0x5000);
                slave_agent.after_sync_op(&ctx, 0x5000);
            },
            || agent.poison(),
        );
        assert!(agent.is_poisoned(), "{kind:?}");
        assert_eq!(
            agent.stats().ops_replayed,
            0,
            "{kind:?}: a poisoned bail-out must not count as a replay"
        );
    }
}

/// A master parked on a *full* ring (no slave draining) must wake when the
/// slave finally consumes a record.
#[test]
fn parked_master_wakes_on_reader_advance() {
    for kind in AgentKind::replication_agents() {
        let agent: Arc<Box<dyn SyncAgent>> = Arc::new(build_agent(kind, parky_config(2)));
        let master = SyncContext::new(VariantRole::Master, 0);
        // Fill the 8-slot buffer.
        for i in 0..8u64 {
            agent.before_sync_op(&master, 0x4000 + i * 64);
            agent.after_sync_op(&master, 0x4000 + i * 64);
        }
        let master_agent = Arc::clone(&agent);
        assert_wakes(
            &format!("{kind:?} master/drain"),
            move || {
                let ctx = SyncContext::new(VariantRole::Master, 0);
                master_agent.before_sync_op(&ctx, 0x9000);
                master_agent.after_sync_op(&ctx, 0x9000);
            },
            || {
                // The slave drains one record, freeing one slot.
                let ctx = SyncContext::new(VariantRole::Slave { index: 0 }, 0);
                agent.before_sync_op(&ctx, 0x5000);
                agent.after_sync_op(&ctx, 0x5000);
            },
        );
        let stats = agent.stats();
        assert_eq!(stats.ops_recorded, 9, "{kind:?}");
        assert!(stats.master_stalls > 0, "{kind:?}: the 9th push must stall");
    }
}

/// A master parked on a full ring must wake on poison (the slaves that
/// would have drained it are gone) and drop the record.
#[test]
fn parked_master_wakes_on_poison() {
    for kind in AgentKind::replication_agents() {
        let agent: Arc<Box<dyn SyncAgent>> = Arc::new(build_agent(kind, parky_config(2)));
        let master = SyncContext::new(VariantRole::Master, 0);
        for i in 0..8u64 {
            agent.before_sync_op(&master, 0x4000 + i * 64);
            agent.after_sync_op(&master, 0x4000 + i * 64);
        }
        let master_agent = Arc::clone(&agent);
        assert_wakes(
            &format!("{kind:?} master/poison"),
            move || {
                let ctx = SyncContext::new(VariantRole::Master, 0);
                master_agent.before_sync_op(&ctx, 0x9000);
                master_agent.after_sync_op(&ctx, 0x9000);
            },
            || agent.poison(),
        );
        assert_eq!(
            agent.stats().ops_recorded,
            8,
            "{kind:?}: the poisoned push must be dropped"
        );
    }
}

/// The wall-of-clocks slave parked on a *clock* (its record is published but
/// a dependent thread has not ticked yet) must wake on that tick.
#[test]
fn parked_woc_slave_wakes_on_clock_tick() {
    let agent: Arc<Box<dyn SyncAgent>> =
        Arc::new(build_agent(AgentKind::WallOfClocks, parky_config(2)));
    // Master: thread 0 then thread 1 touch the same variable — the slave's
    // thread 1 must wait for slave thread 0's tick.
    let m0 = SyncContext::new(VariantRole::Master, 0);
    let m1 = SyncContext::new(VariantRole::Master, 1);
    agent.before_sync_op(&m0, 0xC000);
    agent.after_sync_op(&m0, 0xC000);
    agent.before_sync_op(&m1, 0xC000);
    agent.after_sync_op(&m1, 0xC000);

    let slave_agent = Arc::clone(&agent);
    assert_wakes(
        "WallOfClocks slave/clock-tick",
        move || {
            let ctx = SyncContext::new(VariantRole::Slave { index: 0 }, 1);
            slave_agent.before_sync_op(&ctx, 0xCC00);
            slave_agent.after_sync_op(&ctx, 0xCC00);
        },
        || {
            let ctx = SyncContext::new(VariantRole::Slave { index: 0 }, 0);
            agent.before_sync_op(&ctx, 0xCC00);
            agent.after_sync_op(&ctx, 0xCC00);
        },
    );
    assert_eq!(agent.stats().ops_replayed, 2);
}
