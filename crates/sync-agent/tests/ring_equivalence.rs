//! Property tests: the single-producer ring fast path is observationally
//! equivalent to the multi-producer CAS path.
//!
//! For randomized interleavings of pushes and per-reader cursor advances, a
//! ring built with [`RecordRing::new_spsc`] must behave *identically* to one
//! built with [`RecordRing::new`]: the same [`PushOutcome`] for every push
//! (including the back-pressure `Full` verdicts), the same stored records in
//! the same positions, the same cursor positions and the same backlogs.
//! The cached-minimum-reader optimization and the CAS-free store are pure
//! implementation differences; any divergence here is a lost or reordered
//! record in the agents' sync buffers.

use proptest::prelude::*;

use mvee_sync_agent::ring::{PushOutcome, RecordRing, SyncRecord};

/// One scripted step against both rings.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Try to push a record tagged with the step index.
    Push,
    /// Advance reader `r % readers` if it has backlog (a no-backlog advance
    /// would corrupt any ring, so the script never does it).
    Advance(usize),
}

fn steps_from_tags(tags: &[u8]) -> Vec<Step> {
    tags.iter()
        .map(|&t| {
            if t % 3 == 0 {
                Step::Advance((t / 3) as usize)
            } else {
                Step::Push
            }
        })
        .collect()
}

/// Drives `steps` against one ring, returning every observable: push
/// outcomes and, at the end, the published records and cursor positions.
fn drive(
    ring: &RecordRing,
    steps: &[Step],
) -> (Vec<PushOutcome>, Vec<Option<SyncRecord>>, Vec<u64>) {
    let mut outcomes = Vec::new();
    for (i, step) in steps.iter().enumerate() {
        match step {
            Step::Push => {
                let rec = SyncRecord::with_clock(1, 0x1000 + i as u64 * 8, i as u32, i as u64);
                outcomes.push(ring.try_push(rec));
            }
            Step::Advance(r) => {
                let reader = r % ring.readers();
                if ring.backlog(reader) > 0 {
                    ring.advance_reader(reader);
                }
            }
        }
    }
    let records = (0..ring.write_pos()).map(|p| ring.get(p)).collect();
    let cursors = (0..ring.readers()).map(|r| ring.reader_pos(r)).collect();
    (outcomes, records, cursors)
}

proptest! {
    /// SPSC and MPSC rings agree on every push outcome (stored position or
    /// `Full`), every published record and every cursor, for randomized
    /// push/advance scripts, capacities and reader counts.
    #[test]
    fn spsc_fast_path_is_equivalent_to_mpsc_path(
        tags in proptest::collection::vec(0u8..12, 1..120),
        cap_pow in 1u32..5,
        readers in 1usize..4,
    ) {
        let capacity = 1usize << cap_pow;
        let steps = steps_from_tags(&tags);
        let mpsc = RecordRing::new(capacity, readers);
        let spsc = RecordRing::new_spsc(capacity, readers);
        let (out_m, recs_m, cur_m) = drive(&mpsc, &steps);
        let (out_s, recs_s, cur_s) = drive(&spsc, &steps);
        prop_assert_eq!(out_m, out_s, "push outcomes diverged");
        prop_assert_eq!(recs_m, recs_s, "published records diverged");
        prop_assert_eq!(cur_m, cur_s, "reader cursors diverged");
        prop_assert_eq!(mpsc.write_pos(), spsc.write_pos());
        prop_assert_eq!(mpsc.min_reader_pos(), spsc.min_reader_pos());
        prop_assert_eq!(mpsc.has_space(), spsc.has_space());
    }

    /// Back-pressure is exact on both paths: a script that pushes
    /// `capacity` records with no advances fills either ring, and both
    /// report `Full` for every over-capacity push until the slowest reader
    /// moves.
    #[test]
    fn back_pressure_full_outcomes_match(
        cap_pow in 1u32..5,
        readers in 1usize..4,
        extra in 1usize..6,
    ) {
        let capacity = 1usize << cap_pow;
        for ring in [RecordRing::new(capacity, readers), RecordRing::new_spsc(capacity, readers)] {
            for i in 0..capacity as u64 {
                prop_assert_eq!(
                    ring.try_push(SyncRecord::simple(0, i)),
                    PushOutcome::Stored(i)
                );
            }
            for _ in 0..extra {
                prop_assert_eq!(
                    ring.try_push(SyncRecord::simple(0, 999)),
                    PushOutcome::Full
                );
            }
            // Every reader but one advances: still full (slowest gates).
            for r in 1..readers {
                ring.advance_reader(r);
            }
            if readers > 1 {
                prop_assert_eq!(
                    ring.try_push(SyncRecord::simple(0, 999)),
                    PushOutcome::Full
                );
            }
            ring.advance_reader(0);
            prop_assert_eq!(
                ring.try_push(SyncRecord::simple(0, 1000)),
                PushOutcome::Stored(capacity as u64)
            );
        }
    }
}

/// Deterministic companion: a full wrap-around cycle (fill, drain, refill)
/// leaves both flavours with byte-identical observables.
#[test]
fn wraparound_cycle_is_identical_across_flavours() {
    let mpsc = RecordRing::new(8, 2);
    let spsc = RecordRing::new_spsc(8, 2);
    for ring in [&mpsc, &spsc] {
        for round in 0..5u64 {
            for i in 0..8u64 {
                assert_eq!(
                    ring.try_push(SyncRecord::simple(0, round * 100 + i)),
                    PushOutcome::Stored(round * 8 + i)
                );
            }
            assert_eq!(ring.try_push(SyncRecord::simple(0, 777)), PushOutcome::Full);
            for _ in 0..8 {
                ring.advance_reader(0);
                ring.advance_reader(1);
            }
        }
    }
    assert_eq!(mpsc.write_pos(), spsc.write_pos());
    for pos in 32..40u64 {
        assert_eq!(mpsc.get(pos), spsc.get(pos));
    }
}
