//! Software-diversity transforms applied to variants.
//!
//! The paper's security argument requires the variants to be diversified so
//! that one concrete exploit cannot compromise all of them.  The evaluation
//! enables Address Space Layout Randomization (ASLR), Disjoint Code Layouts
//! (DCL, from the authors' earlier work) and Position Independent Executables
//! for the correctness runs, and argues (§2) that instruction-level diversity
//! breaks DMT systems because it perturbs the instruction counts those
//! systems use to measure thread progress.
//!
//! [`DiversityProfile`] models these transforms for the simulated variants:
//!
//! * per-variant address-space layouts (heap / mmap bases and the base
//!   address of the synchronization variables),
//! * disjoint code layouts (no two variants share a code region), and
//! * an instruction-count perturbation factor per variant (NOP insertion /
//!   code layout effects) used by the DMT baseline comparison.

use serde::{Deserialize, Serialize};

use mvee_core::mvee::VariantLayout;

/// A deterministic, seedable diversity profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiversityProfile {
    /// Randomize address-space layout per variant.
    pub aslr: bool,
    /// Give every variant a disjoint code region.
    pub disjoint_code_layouts: bool,
    /// Apply instruction-count perturbation (NOP insertion model).  The
    /// perturbation is at most ±`max_instruction_skew` of the baseline count.
    pub instruction_skew: bool,
    /// Maximum relative instruction-count skew (e.g. 0.05 = ±5%).
    pub max_instruction_skew: f64,
    /// Seed for the deterministic layout generator.
    pub seed: u64,
}

impl DiversityProfile {
    /// No diversity at all (the configuration used for the paper's
    /// performance runs, §5.1: "we disabled ASLR and did not apply any
    /// diversity techniques").
    pub fn none() -> Self {
        DiversityProfile {
            aslr: false,
            disjoint_code_layouts: false,
            instruction_skew: false,
            max_instruction_skew: 0.0,
            seed: 0,
        }
    }

    /// Full diversity (the configuration used for the correctness runs:
    /// ASLR + DCL + instruction-count perturbation).
    pub fn full(seed: u64) -> Self {
        DiversityProfile {
            aslr: true,
            disjoint_code_layouts: true,
            instruction_skew: true,
            max_instruction_skew: 0.05,
            seed,
        }
    }

    /// ASLR only.
    pub fn aslr_only(seed: u64) -> Self {
        DiversityProfile {
            aslr: true,
            disjoint_code_layouts: false,
            instruction_skew: false,
            max_instruction_skew: 0.0,
            seed,
        }
    }

    fn mix(&self, variant: usize, salt: u64) -> u64 {
        // SplitMix64 over (seed, variant, salt): deterministic and
        // well-distributed, which keeps every run reproducible.
        let mut z = self
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(variant as u64 + 1))
            .wrapping_add(salt.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The kernel address-space layout for variant `variant`.
    pub fn layout_for(&self, variant: usize) -> VariantLayout {
        if !self.aslr || variant == 0 && !self.disjoint_code_layouts {
            // Variant 0 keeps the default layout unless ASLR moves it too.
            if !self.aslr {
                return VariantLayout::default_layout();
            }
        }
        let base = VariantLayout::default_layout();
        if !self.aslr {
            return base;
        }
        // Shift the heap by up to 16 GiB and the mmap area down by up to
        // 64 GiB, in page-sized steps.
        let brk_shift = (self.mix(variant, 1) % 0x4_0000) * 4096;
        let mmap_shift = (self.mix(variant, 2) % 0x10_0000) * 4096;
        VariantLayout {
            brk_base: base.brk_base + brk_shift,
            mmap_top: base.mmap_top - mmap_shift,
        }
    }

    /// The base address of the synchronization-variable region for variant
    /// `variant` (the analogue of the data segment moving under ASLR/PIE).
    pub fn sync_base_for(&self, variant: usize) -> u64 {
        const DEFAULT_SYNC_BASE: u64 = 0x0000_7f10_0000_0000;
        if !self.aslr {
            return DEFAULT_SYNC_BASE;
        }
        DEFAULT_SYNC_BASE + (self.mix(variant, 3) % 0x8_0000) * 4096
    }

    /// The base address of the code region for variant `variant`.
    ///
    /// With disjoint code layouts enabled no two variants may overlap; the
    /// regions are laid out in non-overlapping 1 GiB slots.
    pub fn code_base_for(&self, variant: usize) -> u64 {
        const DEFAULT_CODE_BASE: u64 = 0x0000_5555_5555_0000;
        const SLOT: u64 = 1 << 30;
        if self.disjoint_code_layouts {
            DEFAULT_CODE_BASE + SLOT * variant as u64
        } else if self.aslr {
            DEFAULT_CODE_BASE + (self.mix(variant, 4) % 0x1000) * 4096
        } else {
            DEFAULT_CODE_BASE
        }
    }

    /// The instruction-count multiplier for variant `variant` (1.0 when
    /// instruction skew is disabled).
    ///
    /// DMT systems that measure progress in executed instructions will see
    /// each variant reach its quantum boundary at a different point in the
    /// program when this factor differs between variants — the incompatibility
    /// the paper describes in §2 and §6.
    pub fn instruction_factor_for(&self, variant: usize) -> f64 {
        if !self.instruction_skew || variant == 0 {
            return 1.0;
        }
        let raw = self.mix(variant, 5) % 10_000;
        1.0 + (raw as f64 / 10_000.0 * 2.0 - 1.0) * self.max_instruction_skew
    }

    /// Whether two distinct variants end up with overlapping code regions.
    pub fn code_regions_overlap(&self, a: usize, b: usize) -> bool {
        if a == b {
            return true;
        }
        const SIZE: u64 = 64 << 20; // 64 MiB of code per variant.
        let (sa, sb) = (self.code_base_for(a), self.code_base_for(b));
        sa < sb + SIZE && sb < sa + SIZE
    }
}

impl Default for DiversityProfile {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_diversity_gives_identical_layouts() {
        let d = DiversityProfile::none();
        assert_eq!(d.layout_for(0), d.layout_for(1));
        assert_eq!(d.sync_base_for(0), d.sync_base_for(3));
        assert_eq!(d.instruction_factor_for(0), 1.0);
        assert_eq!(d.instruction_factor_for(2), 1.0);
    }

    #[test]
    fn aslr_gives_each_variant_a_different_layout() {
        let d = DiversityProfile::full(42);
        let l0 = d.layout_for(0);
        let l1 = d.layout_for(1);
        let l2 = d.layout_for(2);
        assert_ne!(l0, l1);
        assert_ne!(l1, l2);
        assert_ne!(d.sync_base_for(0), d.sync_base_for(1));
    }

    #[test]
    fn layouts_are_deterministic_per_seed() {
        let a = DiversityProfile::full(7);
        let b = DiversityProfile::full(7);
        let c = DiversityProfile::full(8);
        assert_eq!(a.layout_for(1), b.layout_for(1));
        assert_ne!(a.layout_for(1), c.layout_for(1));
    }

    #[test]
    fn disjoint_code_layouts_never_overlap() {
        let d = DiversityProfile::full(3);
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert!(
                        !d.code_regions_overlap(a, b),
                        "variants {a} and {b} overlap"
                    );
                }
            }
        }
    }

    #[test]
    fn overlapping_layouts_without_dcl() {
        let d = DiversityProfile::none();
        assert!(d.code_regions_overlap(0, 1));
    }

    #[test]
    fn instruction_skew_is_bounded_and_nontrivial() {
        let d = DiversityProfile::full(99);
        for v in 1..8 {
            let f = d.instruction_factor_for(v);
            assert!((0.95..=1.05).contains(&f), "factor {f} out of bounds");
        }
        // At least one variant differs from the master.
        assert!((1..8).any(|v| (d.instruction_factor_for(v) - 1.0).abs() > 1e-6));
    }

    #[test]
    fn page_alignment_of_generated_layouts() {
        let d = DiversityProfile::full(11);
        for v in 0..4 {
            let l = d.layout_for(v);
            assert_eq!(l.brk_base % 4096, 0);
            assert_eq!(l.mmap_top % 4096, 0);
            assert_eq!(d.sync_base_for(v) % 4096, 0);
        }
    }
}
