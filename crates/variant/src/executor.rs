//! The action interpreter: executes one variant thread's action list.
//!
//! Every synchronization-variable access is bracketed with
//! `before_sync_op` / `after_sync_op` on the thread's port, exactly like the
//! compile-time instrumentation the paper inserts (Listing 3): lock
//! acquisition is a loop of individually instrumented compare-and-swap
//! attempts, lock release is an instrumented store, barriers are an
//! instrumented increment followed by instrumented loads, and the accesses a
//! task-queue performs under its lock are ordinary (uninstrumented) data
//! accesses, as in a data-race-free program.
//!
//! The interpreter runs against a [`ThreadSyscallPort`]: the per-thread
//! handle acquired once at thread start (see [`crate::port`]), so no call
//! in the hot loop re-states the thread index.

use std::sync::Arc;

use mvee_kernel::syscall::{SyscallArg, SyscallRequest, Sysno};
use mvee_kernel::vfs::OpenFlags;

use crate::memory::VariantMemory;
use crate::port::{SyscallPort, ThreadSyscallPort};
use crate::program::{Action, Program, SyscallSpec};

/// Statistics for one executed thread.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ThreadRunStats {
    /// System calls issued (including failed ones).
    pub syscalls: u64,
    /// Sync ops executed.
    pub sync_ops: u64,
    /// Abstract instructions executed (used by the DMT baseline).
    pub instructions: u64,
    /// Whether the thread was killed because the MVEE shut down.
    pub killed: bool,
    /// Number of syscalls that returned an error outcome.
    pub syscall_errors: u64,
}

impl ThreadRunStats {
    /// Merges another thread's statistics into this one.
    pub fn merge(&mut self, other: &ThreadRunStats) {
        self.syscalls += other.syscalls;
        self.sync_ops += other.sync_ops;
        self.instructions += other.instructions;
        self.killed |= other.killed;
        self.syscall_errors += other.syscall_errors;
    }
}

/// Thread-local execution state.
struct ThreadState {
    current_fd: i32,
    current_brk: u64,
    stats: ThreadRunStats,
}

/// Signals that the MVEE shut the variant down mid-execution.
struct Killed;

/// Executes the actions of logical thread `thread` of `program` against its
/// (already acquired) thread port.
///
/// `instruction_factor` models diversity-induced instruction-count skew: the
/// busy-work loops execute `factor` times as many iterations, and the
/// instruction counter is scaled accordingly.
pub fn execute_thread(
    program: &Program,
    thread: usize,
    port: &dyn ThreadSyscallPort,
    memory: &Arc<VariantMemory>,
    instruction_factor: f64,
) -> ThreadRunStats {
    let spec = &program.threads[thread];
    let mut state = ThreadState {
        current_fd: -1,
        current_brk: 0,
        stats: ThreadRunStats::default(),
    };

    // Thread 0 performs the process bookkeeping: one clone per worker thread
    // at the start, exit_group at the end — mirroring what a real threaded
    // program's initial thread does.
    if thread == 0 {
        for _ in 1..program.thread_count() {
            if issue(port, &SyscallRequest::new(Sysno::Clone), &mut state).is_err() {
                state.stats.killed = true;
                return state.stats;
            }
        }
    }

    let result = run_actions(
        &spec.actions,
        program,
        port,
        memory,
        instruction_factor,
        &mut state,
    );
    if result.is_err() {
        state.stats.killed = true;
        return state.stats;
    }

    if thread == 0 {
        let _ = issue(
            port,
            &SyscallRequest::new(Sysno::ExitGroup).with_int(0),
            &mut state,
        );
    }
    state.stats
}

/// Convenience: runs every thread of `program` on its own OS thread —
/// acquiring each thread's port from the factory inside that OS thread —
/// and returns the merged statistics.  Used for native runs and tests; the
/// MVEE runner spawns threads for all variants itself.
pub fn execute_all_threads(
    program: &Program,
    port: Arc<dyn SyscallPort>,
    memory: Arc<VariantMemory>,
    instruction_factor: f64,
) -> ThreadRunStats {
    let program = Arc::new(program.clone());
    let mut handles = Vec::new();
    for t in 0..program.thread_count() {
        let program = Arc::clone(&program);
        let port = Arc::clone(&port);
        let memory = Arc::clone(&memory);
        handles.push(std::thread::spawn(move || {
            let thread_port = port.thread_port(t);
            execute_thread(&program, t, &*thread_port, &memory, instruction_factor)
        }));
    }
    let mut total = ThreadRunStats::default();
    for h in handles {
        total.merge(&h.join().expect("variant thread panicked"));
    }
    total
}

fn run_actions(
    actions: &[Action],
    program: &Program,
    port: &dyn ThreadSyscallPort,
    memory: &Arc<VariantMemory>,
    factor: f64,
    state: &mut ThreadState,
) -> Result<(), Killed> {
    for action in actions {
        run_action(action, program, port, memory, factor, state)?;
    }
    Ok(())
}

fn run_action(
    action: &Action,
    program: &Program,
    port: &dyn ThreadSyscallPort,
    memory: &Arc<VariantMemory>,
    factor: f64,
    state: &mut ThreadState,
) -> Result<(), Killed> {
    match action {
        Action::Compute(units) => {
            let scaled = ((*units as f64) * factor) as u64;
            busy_work(scaled);
            state.stats.instructions += scaled;
        }
        Action::Nop => {
            state.stats.instructions += 1;
        }
        Action::LockAcquire(lock) => {
            let addr = memory.lock_addr(*lock);
            loop {
                port.before_sync_op(addr);
                let acquired = memory.lock_try_acquire(*lock);
                port.after_sync_op(addr);
                state.stats.sync_ops += 1;
                state.stats.instructions += 8;
                if acquired {
                    break;
                }
                std::thread::yield_now();
            }
        }
        Action::LockRelease(lock) => {
            let addr = memory.lock_addr(*lock);
            port.before_sync_op(addr);
            memory.lock_release(*lock);
            port.after_sync_op(addr);
            state.stats.sync_ops += 1;
            state.stats.instructions += 4;
        }
        Action::AtomicAdd { counter, amount } => {
            let addr = memory.counter_addr(*counter);
            port.before_sync_op(addr);
            memory.counter_add(*counter, *amount);
            port.after_sync_op(addr);
            state.stats.sync_ops += 1;
            state.stats.instructions += 4;
        }
        Action::BarrierWait {
            barrier,
            participants,
        } => {
            let addr = memory.barrier_addr(*barrier);
            port.before_sync_op(addr);
            let mut seen = memory.barrier_arrive(*barrier);
            port.after_sync_op(addr);
            state.stats.sync_ops += 1;
            state.stats.instructions += 8;
            while seen < *participants {
                port.before_sync_op(addr);
                seen = memory.barrier_count(*barrier);
                port.after_sync_op(addr);
                state.stats.sync_ops += 1;
                state.stats.instructions += 4;
                if seen < *participants {
                    std::thread::yield_now();
                }
            }
        }
        Action::QueuePush { queue, value } => {
            let lock_addr = memory.queue_lock_addr(*queue);
            acquire_raw(port, memory, lock_addr, *queue, state);
            memory.queue_push(*queue, *value);
            release_raw(port, memory, lock_addr, *queue, state);
            state.stats.instructions += 24;
        }
        Action::QueuePop { queue, print } => {
            let lock_addr = memory.queue_lock_addr(*queue);
            acquire_raw(port, memory, lock_addr, *queue, state);
            let popped = memory.queue_pop(*queue);
            release_raw(port, memory, lock_addr, *queue, state);
            state.stats.instructions += 24;
            if *print {
                let value = popped.map(|v| v as i64).unwrap_or(-1);
                let payload = format!("pop q{} -> {}\n", queue, value);
                let req = SyscallRequest::new(Sysno::Write)
                    .with_fd(1)
                    .with_payload(payload.as_bytes());
                issue(port, &req, state)?;
            }
        }
        Action::PrintCounter(counter) => {
            let addr = memory.counter_addr(*counter);
            port.before_sync_op(addr);
            let value = memory.counter_value(*counter);
            port.after_sync_op(addr);
            state.stats.sync_ops += 1;
            let payload = format!("counter {} = {}\n", counter, value);
            let req = SyscallRequest::new(Sysno::Write)
                .with_fd(1)
                .with_payload(payload.as_bytes());
            issue(port, &req, state)?;
        }
        Action::Syscall(spec) => {
            run_syscall_spec(spec, port, state)?;
        }
        Action::Repeat { times, body } => {
            for _ in 0..*times {
                run_actions(body, program, port, memory, factor, state)?;
            }
        }
    }
    Ok(())
}

/// Queue helper: acquire the queue lock with instrumented CAS attempts.
fn acquire_raw(
    port: &dyn ThreadSyscallPort,
    memory: &Arc<VariantMemory>,
    lock_addr: u64,
    queue: u32,
    state: &mut ThreadState,
) {
    loop {
        port.before_sync_op(lock_addr);
        let acquired = memory.lock_try_acquire_queue(queue);
        port.after_sync_op(lock_addr);
        state.stats.sync_ops += 1;
        if acquired {
            break;
        }
        std::thread::yield_now();
    }
}

/// Queue helper: release the queue lock with an instrumented store.
fn release_raw(
    port: &dyn ThreadSyscallPort,
    memory: &Arc<VariantMemory>,
    lock_addr: u64,
    queue: u32,
    state: &mut ThreadState,
) {
    port.before_sync_op(lock_addr);
    memory.lock_release_queue(queue);
    port.after_sync_op(lock_addr);
    state.stats.sync_ops += 1;
}

fn run_syscall_spec(
    spec: &SyscallSpec,
    port: &dyn ThreadSyscallPort,
    state: &mut ThreadState,
) -> Result<(), Killed> {
    let req = match spec {
        SyscallSpec::OpenInput { path } => SyscallRequest::new(Sysno::Open)
            .with_path(path)
            .with_arg(SyscallArg::Flags(OpenFlags::READ.bits())),
        SyscallSpec::ReadChunk { len } => SyscallRequest::new(Sysno::Read)
            .with_fd(state.current_fd)
            .with_int(*len as i64),
        SyscallSpec::CloseCurrent => SyscallRequest::new(Sysno::Close).with_fd(state.current_fd),
        SyscallSpec::WriteOutput { len, tag } => {
            let mut payload = Vec::with_capacity(*len);
            while payload.len() < *len {
                payload.extend_from_slice(&tag.to_le_bytes());
            }
            payload.truncate(*len);
            SyscallRequest::new(Sysno::Write)
                .with_fd(1)
                .with_payload(&payload)
        }
        SyscallSpec::BrkGrow { grow } => {
            if state.current_brk == 0 {
                // First use: query the current break.
                let query = SyscallRequest::new(Sysno::Brk).with_int(0);
                let out = issue(port, &query, state)?;
                state.current_brk = out.result.unwrap_or(0).max(0) as u64;
            }
            let target = state.current_brk + grow;
            state.current_brk = target;
            SyscallRequest::new(Sysno::Brk).with_int(target as i64)
        }
        SyscallSpec::MmapAnon { len } => SyscallRequest::new(Sysno::Mmap)
            .with_int(*len as i64)
            .with_arg(SyscallArg::Flags(3)),
        SyscallSpec::Gettimeofday => SyscallRequest::new(Sysno::Gettimeofday),
        SyscallSpec::SchedYield => SyscallRequest::new(Sysno::SchedYield),
        SyscallSpec::Getpid => SyscallRequest::new(Sysno::Getpid),
        SyscallSpec::Raw(req) => req.clone(),
    };
    let outcome = issue(port, &req, state)?;
    if let SyscallSpec::OpenInput { .. } = spec {
        state.current_fd = outcome.result.unwrap_or(-1) as i32;
    }
    Ok(())
}

fn issue(
    port: &dyn ThreadSyscallPort,
    req: &SyscallRequest,
    state: &mut ThreadState,
) -> Result<mvee_kernel::syscall::SyscallOutcome, Killed> {
    state.stats.syscalls += 1;
    state.stats.instructions += 64;
    match port.syscall(req) {
        Ok(outcome) => {
            if outcome.result.is_err() {
                state.stats.syscall_errors += 1;
            }
            Ok(outcome)
        }
        Err(_) => Err(Killed),
    }
}

/// Busy work loop: roughly one "instruction" per unit.
fn busy_work(units: u64) {
    let mut acc = 0x9e37_79b9u64;
    for i in 0..units {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        std::hint::black_box(acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::NativePort;
    use crate::program::ThreadSpec;
    use mvee_kernel::kernel::Kernel;

    fn native_setup(program: &Program) -> (Arc<dyn SyscallPort>, Arc<VariantMemory>, Arc<Kernel>) {
        let kernel = Arc::new(Kernel::new_manual_clock());
        let pid = kernel.spawn_process();
        for (path, contents) in &program.files {
            kernel.install_file(path, contents);
        }
        let port: Arc<dyn SyscallPort> = Arc::new(NativePort::new(Arc::clone(&kernel), pid));
        let memory = Arc::new(VariantMemory::for_program(program, 0x7f00_0000_0000));
        (port, memory, kernel)
    }

    fn run_one_thread(
        program: &Program,
        thread: usize,
        port: &Arc<dyn SyscallPort>,
        memory: &Arc<VariantMemory>,
        factor: f64,
    ) -> ThreadRunStats {
        let thread_port = port.thread_port(thread);
        execute_thread(program, thread, &*thread_port, memory, factor)
    }

    #[test]
    fn single_thread_program_runs_and_counts() {
        let mut p = Program::new("t").with_resources(1, 0, 0, 1);
        p.add_thread(ThreadSpec::new(vec![
            Action::Compute(100),
            Action::LockAcquire(0),
            Action::AtomicAdd {
                counter: 0,
                amount: 5,
            },
            Action::LockRelease(0),
            Action::PrintCounter(0),
        ]));
        let (port, memory, kernel) = native_setup(&p);
        let stats = run_one_thread(&p, 0, &port, &memory, 1.0);
        assert!(!stats.killed);
        assert_eq!(stats.sync_ops, 4, "acquire + add + release + counter read");
        // PrintCounter write + exit_group.
        assert_eq!(stats.syscalls, 2);
        assert_eq!(memory.counter_value(0), 5);
        let out = kernel.console_output(0);
        assert_eq!(String::from_utf8(out).unwrap(), "counter 0 = 5\n");
    }

    #[test]
    fn file_io_round_trip() {
        let mut p = Program::new("io").with_file("/data.bin", b"0123456789");
        p.add_thread(ThreadSpec::new(vec![
            Action::Syscall(SyscallSpec::OpenInput {
                path: "/data.bin".into(),
            }),
            Action::Syscall(SyscallSpec::ReadChunk { len: 4 }),
            Action::Syscall(SyscallSpec::ReadChunk { len: 4 }),
            Action::Syscall(SyscallSpec::CloseCurrent),
        ]));
        let (port, memory, _kernel) = native_setup(&p);
        let stats = run_one_thread(&p, 0, &port, &memory, 1.0);
        assert_eq!(stats.syscall_errors, 0);
        assert_eq!(stats.syscalls, 4 + 1, "4 explicit + exit_group");
    }

    #[test]
    fn repeat_multiplies_work() {
        let mut p = Program::new("r").with_resources(1, 0, 0, 1);
        p.add_thread(ThreadSpec::new(vec![Action::Repeat {
            times: 10,
            body: vec![
                Action::LockAcquire(0),
                Action::AtomicAdd {
                    counter: 0,
                    amount: 1,
                },
                Action::LockRelease(0),
            ],
        }]));
        let (port, memory, _kernel) = native_setup(&p);
        let stats = run_one_thread(&p, 0, &port, &memory, 1.0);
        assert_eq!(memory.counter_value(0), 10);
        assert_eq!(stats.sync_ops, 30);
    }

    #[test]
    fn multi_threaded_queue_program_conserves_items() {
        let mut p = Program::new("q").with_resources(0, 1, 1, 1);
        // Thread 0 pushes 20 items; threads 1 and 2 pop 10 each.
        p.add_thread(ThreadSpec::new(vec![
            Action::Repeat {
                times: 20,
                body: vec![Action::QueuePush { queue: 0, value: 1 }],
            },
            Action::BarrierWait {
                barrier: 0,
                participants: 3,
            },
        ]));
        for _ in 0..2 {
            p.add_thread(ThreadSpec::new(vec![
                Action::BarrierWait {
                    barrier: 0,
                    participants: 3,
                },
                Action::Repeat {
                    times: 10,
                    body: vec![Action::QueuePop {
                        queue: 0,
                        print: false,
                    }],
                },
            ]));
        }
        let (port, memory, _kernel) = native_setup(&p);
        let stats = execute_all_threads(&p, port, Arc::clone(&memory), 1.0);
        assert!(!stats.killed);
        assert_eq!(memory.queue_len(0), 0, "all pushed items were popped");
        assert!(stats.sync_ops >= 20 * 2 + 20 * 2 + 3);
    }

    #[test]
    fn barrier_blocks_until_all_arrive() {
        let mut p = Program::new("b").with_resources(0, 1, 0, 1);
        for _ in 0..4 {
            p.add_thread(ThreadSpec::new(vec![
                Action::BarrierWait {
                    barrier: 0,
                    participants: 4,
                },
                Action::AtomicAdd {
                    counter: 0,
                    amount: 1,
                },
            ]));
        }
        let (port, memory, _kernel) = native_setup(&p);
        let stats = execute_all_threads(&p, port, Arc::clone(&memory), 1.0);
        assert_eq!(memory.counter_value(0), 4);
        assert!(!stats.killed);
    }

    #[test]
    fn instruction_factor_scales_instruction_count() {
        let mut p = Program::new("f");
        p.add_thread(ThreadSpec::new(vec![Action::Compute(10_000)]));
        let (port, memory, _kernel) = native_setup(&p);
        let base = run_one_thread(&p, 0, &port, &memory, 1.0);
        let (port2, memory2, _k2) = native_setup(&p);
        let skewed = run_one_thread(&p, 0, &port2, &memory2, 1.05);
        assert!(skewed.instructions > base.instructions);
    }

    #[test]
    fn thread_zero_issues_clone_per_worker() {
        let mut p = Program::new("c");
        p.add_thread(ThreadSpec::new(vec![Action::Nop]));
        p.add_thread(ThreadSpec::new(vec![Action::Nop]));
        p.add_thread(ThreadSpec::new(vec![Action::Nop]));
        let (port, memory, _kernel) = native_setup(&p);
        let stats = run_one_thread(&p, 0, &port, &memory, 1.0);
        // Two clones (for threads 1 and 2) + exit_group.
        assert_eq!(stats.syscalls, 3);
    }
}
