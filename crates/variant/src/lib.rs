//! Variant program model, execution engine and software-diversity transforms.
//!
//! The paper runs real, diversified x86 binaries (PARSEC, SPLASH-2x, nginx)
//! under its MVEE.  This crate provides the substitute: a small, explicit
//! *program model* ([`program::Program`]) whose threads execute sequences of
//! actions — computation, synchronization operations on named variables,
//! system calls, barriers and task-queue operations — on real OS threads.
//!
//! The crucial property the model preserves is the one the paper's agents
//! depend on: every access to a synchronization variable is a *sync op* that
//! is bracketed by `before_sync_op` / `after_sync_op` calls into the injected
//! agent, and every externally visible effect flows through the monitored
//! system-call gateway.  Locks are spinlocks built from individual
//! compare-and-swap sync ops (the paper's Listing 1/3), barriers are
//! increment-and-spin loops over sync variables, and task queues are
//! lock-protected shared structures whose pop order — and therefore the
//! program's observable output — depends on the thread interleaving.
//!
//! [`diversity::DiversityProfile`] models the software-diversity transforms
//! the paper applies to its variants (ASLR, disjoint code layouts,
//! instruction-count perturbation), and [`runner`] executes a program
//! natively or under a fully wired MVEE and reports timing, monitor and agent
//! statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diversity;
pub mod executor;
pub mod memory;
pub mod port;
pub mod program;
pub mod report;
pub mod runner;

pub use diversity::DiversityProfile;
pub use program::{Action, Program, SyscallSpec, ThreadSpec};
pub use report::{NativeReport, RunReport};
pub use runner::{run_mvee, run_native, RunConfig};
