//! The variant's simulated user-space memory for shared program state.
//!
//! Each variant owns one [`VariantMemory`]: the spinlock words, barrier
//! counters, task queues and shared counters its threads operate on.  Under
//! address-space diversity the *addresses* reported for these variables
//! differ between variants (each variant gets its own base), while the
//! logical layout is identical — exactly the situation the paper's agents
//! must tolerate without maintaining an explicit address mapping (§4.5.1).
//!
//! All shared state is stored in atomics, so the model itself is free of data
//! races even if a (buggy or adversarial) program accesses the state without
//! holding the protecting lock.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::program::{BarrierId, CounterId, LockId, Program, QueueId};

/// Maximum number of entries a task queue can hold.
pub const QUEUE_CAPACITY: usize = 4096;

/// Spacing between simulated synchronization variables, chosen so distinct
/// variables never share a cache line (or an 8-byte word, which would force
/// the agents to serialize them).
pub const VAR_SPACING: u64 = 64;

#[derive(Debug)]
struct TaskQueue {
    slots: Vec<AtomicU64>,
    head: AtomicU64,
    tail: AtomicU64,
}

impl TaskQueue {
    fn new() -> Self {
        TaskQueue {
            slots: (0..QUEUE_CAPACITY).map(|_| AtomicU64::new(0)).collect(),
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
        }
    }
}

/// Shared memory of one variant.
#[derive(Debug)]
pub struct VariantMemory {
    /// Base address reported for synchronization variables (diversified).
    sync_base: u64,
    locks: Vec<AtomicU32>,
    barriers: Vec<AtomicU32>,
    queues: Vec<TaskQueue>,
    queue_locks: Vec<AtomicU32>,
    counters: Vec<AtomicU64>,
}

impl VariantMemory {
    /// Allocates the shared state a program needs, reporting synchronization
    /// variable addresses relative to `sync_base`.
    pub fn for_program(program: &Program, sync_base: u64) -> Self {
        VariantMemory {
            sync_base,
            locks: (0..program.locks).map(|_| AtomicU32::new(0)).collect(),
            barriers: (0..program.barriers).map(|_| AtomicU32::new(0)).collect(),
            queues: (0..program.queues).map(|_| TaskQueue::new()).collect(),
            queue_locks: (0..program.queues).map(|_| AtomicU32::new(0)).collect(),
            counters: (0..program.counters).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The diversified base address of this variant's sync variables.
    pub fn sync_base(&self) -> u64 {
        self.sync_base
    }

    /// Address of lock `id` in this variant.
    pub fn lock_addr(&self, id: LockId) -> u64 {
        self.sync_base + u64::from(id) * VAR_SPACING
    }

    /// Address of barrier `id` in this variant.
    pub fn barrier_addr(&self, id: BarrierId) -> u64 {
        self.sync_base + 0x10_0000 + u64::from(id) * VAR_SPACING
    }

    /// Address of the lock protecting queue `id` in this variant.
    pub fn queue_lock_addr(&self, id: QueueId) -> u64 {
        self.sync_base + 0x20_0000 + u64::from(id) * VAR_SPACING
    }

    /// Address of counter `id` in this variant.
    pub fn counter_addr(&self, id: CounterId) -> u64 {
        self.sync_base + 0x30_0000 + u64::from(id) * VAR_SPACING
    }

    // ---- spinlock words ---------------------------------------------------

    /// Attempts to acquire lock `id` with a single compare-and-swap.
    /// Returns `true` on success.  This is one sync op.
    pub fn lock_try_acquire(&self, id: LockId) -> bool {
        self.locks[id as usize]
            .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Releases lock `id` with a plain store.  This is one sync op.
    pub fn lock_release(&self, id: LockId) {
        self.locks[id as usize].store(0, Ordering::Release);
    }

    /// Whether lock `id` is currently held (diagnostics only).
    pub fn lock_is_held(&self, id: LockId) -> bool {
        self.locks[id as usize].load(Ordering::Acquire) != 0
    }

    /// Attempts to acquire the spinlock protecting queue `id`.
    /// Returns `true` on success.  This is one sync op.
    pub fn lock_try_acquire_queue(&self, id: QueueId) -> bool {
        self.queue_locks[id as usize]
            .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Releases the spinlock protecting queue `id`.  This is one sync op.
    pub fn lock_release_queue(&self, id: QueueId) {
        self.queue_locks[id as usize].store(0, Ordering::Release);
    }

    // ---- barriers ----------------------------------------------------------

    /// Atomically increments the arrival counter of barrier `id` and returns
    /// the new value.  This is one sync op.
    pub fn barrier_arrive(&self, id: BarrierId) -> u32 {
        self.barriers[id as usize].fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Reads the arrival counter of barrier `id`.  This is one sync op
    /// (an aligned load of a synchronization variable).
    pub fn barrier_count(&self, id: BarrierId) -> u32 {
        self.barriers[id as usize].load(Ordering::Acquire)
    }

    // ---- queues (data protected by the queue lock) --------------------------

    /// Appends `value` to queue `id`.  Must be called with the queue lock
    /// held; the accesses themselves are ordinary data accesses.
    pub fn queue_push(&self, id: QueueId, value: u64) -> bool {
        let q = &self.queues[id as usize];
        let tail = q.tail.load(Ordering::Acquire);
        let head = q.head.load(Ordering::Acquire);
        if (tail - head) as usize >= QUEUE_CAPACITY {
            return false;
        }
        q.slots[(tail as usize) % QUEUE_CAPACITY].store(value, Ordering::Release);
        q.tail.store(tail + 1, Ordering::Release);
        true
    }

    /// Pops the oldest value from queue `id`, or `None` when empty.  Must be
    /// called with the queue lock held.
    pub fn queue_pop(&self, id: QueueId) -> Option<u64> {
        let q = &self.queues[id as usize];
        let head = q.head.load(Ordering::Acquire);
        let tail = q.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let value = q.slots[(head as usize) % QUEUE_CAPACITY].load(Ordering::Acquire);
        q.head.store(head + 1, Ordering::Release);
        Some(value)
    }

    /// Number of values currently queued.
    pub fn queue_len(&self, id: QueueId) -> usize {
        let q = &self.queues[id as usize];
        (q.tail.load(Ordering::Acquire) - q.head.load(Ordering::Acquire)) as usize
    }

    // ---- counters ----------------------------------------------------------

    /// Atomically adds `amount` to counter `id` and returns the new value.
    /// This is one sync op (a LOCK-prefixed read-modify-write).
    pub fn counter_add(&self, id: CounterId, amount: u64) -> u64 {
        self.counters[id as usize].fetch_add(amount, Ordering::AcqRel) + amount
    }

    /// Reads counter `id`.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id as usize].load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;

    fn memory() -> VariantMemory {
        let p = Program::new("m").with_resources(4, 2, 2, 2);
        VariantMemory::for_program(&p, 0x7f00_0000_0000)
    }

    #[test]
    fn addresses_are_distinct_and_word_separated() {
        let m = memory();
        let a0 = m.lock_addr(0);
        let a1 = m.lock_addr(1);
        assert!(a1 - a0 >= 8, "locks must not share a 64-bit word");
        assert_ne!(m.lock_addr(0), m.barrier_addr(0));
        assert_ne!(m.barrier_addr(0), m.queue_lock_addr(0));
        assert_ne!(m.queue_lock_addr(0), m.counter_addr(0));
    }

    #[test]
    fn diversified_bases_shift_every_address() {
        let p = Program::new("m").with_resources(1, 1, 1, 1);
        let m0 = VariantMemory::for_program(&p, 0x1000_0000);
        let m1 = VariantMemory::for_program(&p, 0x2000_0000);
        assert_ne!(m0.lock_addr(0), m1.lock_addr(0));
        assert_eq!(
            m1.lock_addr(0) - m0.lock_addr(0),
            0x1000_0000,
            "logical layout is preserved, only the base moves"
        );
    }

    #[test]
    fn spinlock_acquire_release_cycle() {
        let m = memory();
        assert!(m.lock_try_acquire(0));
        assert!(m.lock_is_held(0));
        assert!(!m.lock_try_acquire(0), "second acquire must fail");
        m.lock_release(0);
        assert!(!m.lock_is_held(0));
        assert!(m.lock_try_acquire(0));
    }

    #[test]
    fn barrier_counts_arrivals() {
        let m = memory();
        assert_eq!(m.barrier_count(0), 0);
        assert_eq!(m.barrier_arrive(0), 1);
        assert_eq!(m.barrier_arrive(0), 2);
        assert_eq!(m.barrier_count(0), 2);
        // Barriers are independent.
        assert_eq!(m.barrier_count(1), 0);
    }

    #[test]
    fn queue_is_fifo_and_bounded() {
        let m = memory();
        assert_eq!(m.queue_pop(0), None);
        assert!(m.queue_push(0, 10));
        assert!(m.queue_push(0, 20));
        assert_eq!(m.queue_len(0), 2);
        assert_eq!(m.queue_pop(0), Some(10));
        assert_eq!(m.queue_pop(0), Some(20));
        assert_eq!(m.queue_pop(0), None);
    }

    #[test]
    fn queue_rejects_overflow() {
        let m = memory();
        for i in 0..QUEUE_CAPACITY as u64 {
            assert!(m.queue_push(1, i));
        }
        assert!(!m.queue_push(1, 999));
        assert_eq!(m.queue_len(1), QUEUE_CAPACITY);
    }

    #[test]
    fn counters_accumulate() {
        let m = memory();
        assert_eq!(m.counter_add(0, 5), 5);
        assert_eq!(m.counter_add(0, 3), 8);
        assert_eq!(m.counter_value(0), 8);
        assert_eq!(m.counter_value(1), 0);
    }
}
