//! The syscall/sync-op ports a variant thread executes against.
//!
//! The executor is agnostic about whether it runs under the MVEE or
//! natively: it only needs something that accepts system calls and sync-op
//! brackets.  Since the thread-port gateway redesign that abstraction is
//! split in two, mirroring the core API:
//!
//! * [`SyscallPort`] — the per-*variant* factory (`Send + Sync`, shared by
//!   all of a variant's OS threads).  Implemented by
//!   [`VariantGateway`](mvee_core::mvee::VariantGateway) (monitored
//!   execution) and [`NativePort`] (direct execution against a private
//!   kernel, the "native" baseline of the evaluation).
//! * [`ThreadSyscallPort`] — the per-*thread* handle a factory yields once
//!   per logical thread ([`SyscallPort::thread_port`]).  The MVEE
//!   implementation is [`ThreadPort`](mvee_core::port::ThreadPort), which
//!   caches its shard binding, sequence counter and agent context and owns
//!   its deferred-comparison queue locally; the native implementation is
//!   [`NativeThreadPort`].
//!
//! The executor acquires the thread handle once, at thread start, and every
//! subsequent call goes through it without re-stating the thread index —
//! thread identity is a type, not a per-call convention.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mvee_core::async_port::{AsyncThreadPort, SubmitOutcome, Ticket};
use mvee_core::monitor::MonitorError;
use mvee_core::mvee::VariantGateway;
use mvee_core::port::ThreadPort;
use mvee_core::remote::LeaderPort;
use mvee_kernel::kernel::Kernel;
use mvee_kernel::process::Pid;
use mvee_kernel::syscall::{SyscallOutcome, SyscallRequest};

/// What [`ThreadSyscallPort::submit`] did with a call: either the verdict
/// (the port completed it synchronously) or a ticket to [`reap`] later.
///
/// Mirrors [`SubmitOutcome`] from the core async transport, re-expressed at
/// the trait level so the executor does not need to know which transport is
/// behind the box.
///
/// [`reap`]: ThreadSyscallPort::reap
#[derive(Debug)]
pub enum Submitted {
    /// The call completed synchronously; this is its verdict.
    Done(Result<SyscallOutcome, MonitorError>),
    /// The call was pipelined; reap the verdict with the ticket.
    Pending(Ticket),
}

/// What one variant *thread* calls instead of the kernel.
///
/// Handles are `Send` (acquired by — or moved into — the OS thread that
/// runs the logical thread) but deliberately not required to be `Sync`:
/// the MVEE implementation owns unsynchronized per-thread state.
pub trait ThreadSyscallPort: Send {
    /// Issues a system call on behalf of this port's logical thread.
    fn syscall(&self, req: &SyscallRequest) -> Result<SyscallOutcome, MonitorError>;

    /// Submits a call, possibly without waiting for its verdict.
    ///
    /// Synchronous transports complete every call inline, so the default
    /// simply wraps [`syscall`](Self::syscall) in [`Submitted::Done`].  The
    /// async ring transport pipelines compare-only and uncompared calls as
    /// [`Submitted::Pending`] tickets instead.
    fn submit(&self, req: &SyscallRequest) -> Submitted {
        Submitted::Done(self.syscall(req))
    }

    /// Blocks for — and returns — the verdict of a [`Submitted::Pending`]
    /// ticket.
    ///
    /// # Panics
    ///
    /// The default panics: synchronous transports never hand out tickets,
    /// so reaping one is an executor bug, not a runtime condition.
    fn reap(&self, ticket: Ticket) -> Result<SyscallOutcome, MonitorError> {
        panic!("this port completes calls synchronously; ticket {ticket} was never issued");
    }

    /// Called immediately before a sync op on the variable at `addr`.
    fn before_sync_op(&self, addr: u64);

    /// Called immediately after the sync op on the variable at `addr`.
    fn after_sync_op(&self, addr: u64);

    /// The variant index this port belongs to (0 = master / native).
    fn variant_index(&self) -> usize;

    /// The logical thread index this port is bound to.
    fn thread_index(&self) -> usize;
}

/// The per-variant port factory every variant OS thread draws its
/// [`ThreadSyscallPort`] from.
pub trait SyscallPort: Send + Sync {
    /// Acquires the handle for logical thread `thread`.
    ///
    /// Called once per (variant, thread), from the OS thread that will use
    /// the handle.
    fn thread_port(&self, thread: usize) -> Box<dyn ThreadSyscallPort>;

    /// The variant index this factory belongs to (0 = master / native).
    fn variant_index(&self) -> usize;
}

impl ThreadSyscallPort for ThreadPort {
    fn syscall(&self, req: &SyscallRequest) -> Result<SyscallOutcome, MonitorError> {
        ThreadPort::syscall(self, req)
    }

    fn before_sync_op(&self, addr: u64) {
        ThreadPort::before_sync_op(self, addr)
    }

    fn after_sync_op(&self, addr: u64) {
        ThreadPort::after_sync_op(self, addr)
    }

    fn variant_index(&self) -> usize {
        ThreadPort::variant_index(self)
    }

    fn thread_index(&self) -> usize {
        ThreadPort::thread_index(self)
    }
}

impl ThreadSyscallPort for AsyncThreadPort {
    fn syscall(&self, req: &SyscallRequest) -> Result<SyscallOutcome, MonitorError> {
        AsyncThreadPort::syscall(self, req)
    }

    fn submit(&self, req: &SyscallRequest) -> Submitted {
        match AsyncThreadPort::submit(self, req) {
            SubmitOutcome::Completed(result) => Submitted::Done(result),
            SubmitOutcome::Ticket(ticket) => Submitted::Pending(ticket),
        }
    }

    fn reap(&self, ticket: Ticket) -> Result<SyscallOutcome, MonitorError> {
        AsyncThreadPort::reap(self, ticket)
    }

    fn before_sync_op(&self, addr: u64) {
        AsyncThreadPort::before_sync_op(self, addr)
    }

    fn after_sync_op(&self, addr: u64) {
        AsyncThreadPort::after_sync_op(self, addr)
    }

    fn variant_index(&self) -> usize {
        AsyncThreadPort::variant_index(self)
    }

    fn thread_index(&self) -> usize {
        AsyncThreadPort::thread_index(self)
    }
}

impl ThreadSyscallPort for LeaderPort {
    fn syscall(&self, req: &SyscallRequest) -> Result<SyscallOutcome, MonitorError> {
        LeaderPort::syscall(self, req)
    }

    fn before_sync_op(&self, addr: u64) {
        LeaderPort::before_sync_op(self, addr)
    }

    fn after_sync_op(&self, addr: u64) {
        LeaderPort::after_sync_op(self, addr)
    }

    fn variant_index(&self) -> usize {
        LeaderPort::variant_index(self)
    }

    fn thread_index(&self) -> usize {
        LeaderPort::thread_index(self)
    }
}

impl SyscallPort for VariantGateway {
    /// Transport-aware: yields a synchronous [`ThreadPort`], an
    /// [`AsyncThreadPort`] or — for variant 0 of a distributed MVEE — a
    /// [`LeaderPort`] according to the MVEE's configured
    /// [`Transport`](mvee_core::config::Transport), so executors pick up
    /// the ring or replication transport with no code change.
    fn thread_port(&self, thread: usize) -> Box<dyn ThreadSyscallPort> {
        if self.transport().is_remote() && SyscallPort::variant_index(self) == 0 {
            Box::new(self.leader_thread(thread))
        } else if self.transport().is_async() {
            Box::new(self.async_thread(thread))
        } else {
            Box::new(self.thread(thread))
        }
    }

    fn variant_index(&self) -> usize {
        VariantGateway::variant_index(self)
    }
}

/// Shared state behind a [`NativePort`] and its thread handles.
struct NativeShared {
    kernel: Arc<Kernel>,
    pid: Pid,
    sync_ops: AtomicU64,
    syscalls: AtomicU64,
}

/// Direct, unmonitored execution against a private kernel process.
///
/// This is the "native execution" of the paper's evaluation: no monitor, no
/// replication, no sync-op ordering — only the raw work of the program.
#[derive(Clone)]
pub struct NativePort {
    shared: Arc<NativeShared>,
}

impl NativePort {
    /// Creates a native port over an existing kernel process.
    pub fn new(kernel: Arc<Kernel>, pid: Pid) -> Self {
        NativePort {
            shared: Arc::new(NativeShared {
                kernel,
                pid,
                sync_ops: AtomicU64::new(0),
                syscalls: AtomicU64::new(0),
            }),
        }
    }

    /// Number of sync ops the program executed.
    pub fn sync_op_count(&self) -> u64 {
        self.shared.sync_ops.load(Ordering::Relaxed)
    }

    /// Number of system calls the program executed.
    pub fn syscall_count(&self) -> u64 {
        self.shared.syscalls.load(Ordering::Relaxed)
    }

    /// The kernel backing this port.
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.shared.kernel
    }

    /// The kernel process id.
    pub fn pid(&self) -> Pid {
        self.shared.pid
    }
}

impl SyscallPort for NativePort {
    fn thread_port(&self, thread: usize) -> Box<dyn ThreadSyscallPort> {
        Box::new(NativeThreadPort {
            shared: Arc::clone(&self.shared),
            thread,
        })
    }

    fn variant_index(&self) -> usize {
        0
    }
}

/// One native thread's handle: executes directly against the kernel,
/// counting into the factory's shared counters.
pub struct NativeThreadPort {
    shared: Arc<NativeShared>,
    thread: usize,
}

impl ThreadSyscallPort for NativeThreadPort {
    fn syscall(&self, req: &SyscallRequest) -> Result<SyscallOutcome, MonitorError> {
        self.shared.syscalls.fetch_add(1, Ordering::Relaxed);
        Ok(self
            .shared
            .kernel
            .execute(self.shared.pid, self.thread as u64, req))
    }

    fn before_sync_op(&self, _addr: u64) {
        self.shared.sync_ops.fetch_add(1, Ordering::Relaxed);
    }

    fn after_sync_op(&self, _addr: u64) {}

    fn variant_index(&self) -> usize {
        0
    }

    fn thread_index(&self) -> usize {
        self.thread
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvee_kernel::syscall::Sysno;

    #[test]
    fn native_port_executes_directly_and_counts() {
        let kernel = Arc::new(Kernel::new_manual_clock());
        let pid = kernel.spawn_process();
        let factory = NativePort::new(Arc::clone(&kernel), pid);
        let port = factory.thread_port(0);
        let out = port.syscall(&SyscallRequest::new(Sysno::Getpid)).unwrap();
        assert!(out.is_ok());
        port.before_sync_op(0x1000);
        port.after_sync_op(0x1000);
        assert_eq!(factory.syscall_count(), 1);
        assert_eq!(factory.sync_op_count(), 1);
        assert_eq!(port.variant_index(), 0);
        assert_eq!(port.thread_index(), 0);
        assert_eq!(factory.pid(), pid);
    }

    #[test]
    fn native_thread_ports_share_the_factory_counters() {
        let kernel = Arc::new(Kernel::new_manual_clock());
        let pid = kernel.spawn_process();
        let factory = NativePort::new(Arc::clone(&kernel), pid);
        for t in 0..3 {
            let port = factory.thread_port(t);
            port.syscall(&SyscallRequest::new(Sysno::Gettid)).unwrap();
        }
        assert_eq!(factory.syscall_count(), 3);
    }

    #[test]
    fn sync_ports_complete_submissions_inline() {
        // The trait's default `submit` wraps `syscall`: a synchronous port
        // never hands out tickets.
        let kernel = Arc::new(Kernel::new_manual_clock());
        let pid = kernel.spawn_process();
        let factory = NativePort::new(Arc::clone(&kernel), pid);
        let port = factory.thread_port(0);
        match port.submit(&SyscallRequest::new(Sysno::Getpid)) {
            Submitted::Done(result) => assert!(result.unwrap().is_ok()),
            Submitted::Pending(_) => panic!("sync ports must complete inline"),
        }
    }

    #[test]
    fn async_transport_factory_yields_pipelining_ports() {
        // With Transport::AsyncRings configured, the gateway factory hands
        // out ring-backed ports behind the same trait object, and
        // compare-only calls come back as tickets.
        let mvee = mvee_core::mvee::Mvee::builder()
            .variants(1)
            .transport(mvee_core::config::Transport::AsyncRings {
                depth: 8,
                pollers: mvee_core::config::Pollers::PerPort,
            })
            .manual_clock(true)
            .build();
        let gw = mvee.gateway(0);
        let factory: &dyn SyscallPort = &gw;
        let port = factory.thread_port(0);
        match port.submit(&SyscallRequest::new(Sysno::Brk).with_int(0)) {
            Submitted::Pending(ticket) => {
                port.reap(ticket).unwrap();
            }
            Submitted::Done(_) => panic!("the async transport must pipeline brk"),
        }
        // Replicated calls stay synchronous even on the async transport.
        match port.submit(&SyscallRequest::new(Sysno::Gettimeofday)) {
            Submitted::Done(result) => assert!(result.unwrap().is_ok()),
            Submitted::Pending(_) => panic!("replicated calls must block at the reap point"),
        }
        drop(port);
        assert_eq!(mvee.monitor_stats().total_syscalls, 2);
    }

    #[test]
    fn gateway_port_routes_through_monitor_and_agent() {
        let mvee = mvee_core::mvee::Mvee::builder()
            .variants(1)
            .manual_clock(true)
            .build();
        let gw = mvee.gateway(0);
        let factory: &dyn SyscallPort = &gw;
        let port = factory.thread_port(0);
        port.before_sync_op(0x2000);
        port.after_sync_op(0x2000);
        let out = port.syscall(&SyscallRequest::new(Sysno::Gettid)).unwrap();
        assert!(out.is_ok());
        assert_eq!(mvee.agent_stats().ops_recorded, 1);
        assert_eq!(mvee.monitor_stats().total_syscalls, 1);
        assert_eq!(port.variant_index(), 0);
        assert_eq!(port.thread_index(), 0);
    }
}
