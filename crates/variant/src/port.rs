//! The syscall/sync-op port a variant thread executes against.
//!
//! The executor is agnostic about whether it runs under the MVEE or natively:
//! it only needs something that accepts system calls and sync-op brackets.
//! [`SyscallPort`] is that abstraction; it is implemented by
//! [`VariantGateway`](mvee_core::mvee::VariantGateway) (monitored execution)
//! and by [`NativePort`] (direct execution against a private kernel, used for
//! the "native" baselines of the evaluation).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mvee_core::monitor::MonitorError;
use mvee_core::mvee::VariantGateway;
use mvee_kernel::kernel::Kernel;
use mvee_kernel::process::Pid;
use mvee_kernel::syscall::{SyscallOutcome, SyscallRequest};

/// What a variant thread calls instead of the kernel.
pub trait SyscallPort: Send + Sync {
    /// Issues a system call on behalf of logical thread `thread`.
    fn syscall(&self, thread: usize, req: &SyscallRequest) -> Result<SyscallOutcome, MonitorError>;

    /// Called immediately before a sync op on the variable at `addr`.
    fn before_sync_op(&self, thread: usize, addr: u64);

    /// Called immediately after the sync op on the variable at `addr`.
    fn after_sync_op(&self, thread: usize, addr: u64);

    /// The variant index this port belongs to (0 = master / native).
    fn variant_index(&self) -> usize;
}

impl SyscallPort for VariantGateway {
    fn syscall(&self, thread: usize, req: &SyscallRequest) -> Result<SyscallOutcome, MonitorError> {
        VariantGateway::syscall(self, thread, req)
    }

    fn before_sync_op(&self, thread: usize, addr: u64) {
        let ctx = self.sync_context(thread);
        self.agent().before_sync_op(&ctx, addr);
    }

    fn after_sync_op(&self, thread: usize, addr: u64) {
        let ctx = self.sync_context(thread);
        self.agent().after_sync_op(&ctx, addr);
    }

    fn variant_index(&self) -> usize {
        VariantGateway::variant_index(self)
    }
}

/// Direct, unmonitored execution against a private kernel process.
///
/// This is the "native execution" of the paper's evaluation: no monitor, no
/// replication, no sync-op ordering — only the raw work of the program.
pub struct NativePort {
    kernel: Arc<Kernel>,
    pid: Pid,
    sync_ops: AtomicU64,
    syscalls: AtomicU64,
}

impl NativePort {
    /// Creates a native port over an existing kernel process.
    pub fn new(kernel: Arc<Kernel>, pid: Pid) -> Self {
        NativePort {
            kernel,
            pid,
            sync_ops: AtomicU64::new(0),
            syscalls: AtomicU64::new(0),
        }
    }

    /// Number of sync ops the program executed.
    pub fn sync_op_count(&self) -> u64 {
        self.sync_ops.load(Ordering::Relaxed)
    }

    /// Number of system calls the program executed.
    pub fn syscall_count(&self) -> u64 {
        self.syscalls.load(Ordering::Relaxed)
    }

    /// The kernel backing this port.
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// The kernel process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }
}

impl SyscallPort for NativePort {
    fn syscall(&self, thread: usize, req: &SyscallRequest) -> Result<SyscallOutcome, MonitorError> {
        self.syscalls.fetch_add(1, Ordering::Relaxed);
        Ok(self.kernel.execute(self.pid, thread as u64, req))
    }

    fn before_sync_op(&self, _thread: usize, _addr: u64) {
        self.sync_ops.fetch_add(1, Ordering::Relaxed);
    }

    fn after_sync_op(&self, _thread: usize, _addr: u64) {}

    fn variant_index(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvee_kernel::syscall::Sysno;

    #[test]
    fn native_port_executes_directly_and_counts() {
        let kernel = Arc::new(Kernel::new_manual_clock());
        let pid = kernel.spawn_process();
        let port = NativePort::new(Arc::clone(&kernel), pid);
        let out = port
            .syscall(0, &SyscallRequest::new(Sysno::Getpid))
            .unwrap();
        assert!(out.is_ok());
        port.before_sync_op(0, 0x1000);
        port.after_sync_op(0, 0x1000);
        assert_eq!(port.syscall_count(), 1);
        assert_eq!(port.sync_op_count(), 1);
        assert_eq!(port.variant_index(), 0);
        assert_eq!(port.pid(), pid);
    }

    #[test]
    fn gateway_port_routes_through_monitor_and_agent() {
        let mvee = mvee_core::mvee::Mvee::builder()
            .variants(1)
            .manual_clock(true)
            .build();
        let gw = mvee.gateway(0);
        let port: &dyn SyscallPort = &gw;
        port.before_sync_op(0, 0x2000);
        port.after_sync_op(0, 0x2000);
        let out = port
            .syscall(0, &SyscallRequest::new(Sysno::Gettid))
            .unwrap();
        assert!(out.is_ok());
        assert_eq!(mvee.agent_stats().ops_recorded, 1);
        assert_eq!(mvee.monitor_stats().total_syscalls, 1);
        assert_eq!(port.variant_index(), 0);
    }
}
