//! The variant program model: threads as sequences of actions.
//!
//! A [`Program`] declares its shared resources (locks, barriers, queues,
//! counters), the files it expects to find in the simulated file system and
//! one action list per logical thread.  The same `Program` is executed by
//! every variant; diversity changes *where* its synchronization variables
//! live, not *what* the program does.

use serde::{Deserialize, Serialize};

use mvee_kernel::syscall::SyscallRequest;

/// Identifier of a lock (spinlock) declared by the program.
pub type LockId = u32;
/// Identifier of a barrier declared by the program.
pub type BarrierId = u32;
/// Identifier of a task queue declared by the program.
pub type QueueId = u32;
/// Identifier of a shared counter declared by the program.
pub type CounterId = u32;

/// A simplified, parameterized system call issued by an action.
///
/// The executor expands these into full [`SyscallRequest`]s; keeping them
/// symbolic lets one `Program` run in differently diversified variants (the
/// concrete pointer arguments are filled in per variant).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SyscallSpec {
    /// `open(path, O_RDONLY)`; the resulting FD becomes the thread's
    /// "current" descriptor.
    OpenInput {
        /// Path to open.
        path: String,
    },
    /// `read(current_fd, len)`.
    ReadChunk {
        /// Number of bytes to request.
        len: usize,
    },
    /// `close(current_fd)`.
    CloseCurrent,
    /// `write(stdout, …)` of `len` deterministic bytes tagged with `tag`.
    WriteOutput {
        /// Payload length.
        len: usize,
        /// Tag mixed into the payload so different logical writes differ.
        tag: u64,
    },
    /// `brk(current + grow)`.
    BrkGrow {
        /// Number of bytes to grow the heap by.
        grow: u64,
    },
    /// Anonymous `mmap` of `len` bytes.
    MmapAnon {
        /// Mapping length in bytes.
        len: u64,
    },
    /// `gettimeofday`.
    Gettimeofday,
    /// `sched_yield`.
    SchedYield,
    /// `getpid`.
    Getpid,
    /// A fully spelled-out request (used by attack payloads and tests).
    Raw(SyscallRequest),
}

/// One step of a thread's execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Action {
    /// Busy computation of roughly `units` abstract work units.
    Compute(u64),
    /// Acquire the spinlock `LockId` (a loop of CAS sync ops).
    LockAcquire(LockId),
    /// Release the spinlock `LockId` (a store sync op).
    LockRelease(LockId),
    /// Atomically add `amount` to a shared counter while holding no lock
    /// (a single LOCK-prefixed read-modify-write sync op).
    AtomicAdd {
        /// Which counter.
        counter: CounterId,
        /// Amount to add.
        amount: u64,
    },
    /// Wait at a barrier until all `participants` threads have arrived.
    BarrierWait {
        /// Which barrier.
        barrier: BarrierId,
        /// Number of threads that must arrive.
        participants: u32,
    },
    /// Push `value` onto a lock-protected task queue.
    QueuePush {
        /// Which queue.
        queue: QueueId,
        /// The value pushed.
        value: u64,
    },
    /// Pop a value from a lock-protected task queue (no-op when empty);
    /// optionally report the popped value on stdout, making the pop order
    /// externally observable.
    QueuePop {
        /// Which queue.
        queue: QueueId,
        /// Whether to `write` the popped value to stdout.
        print: bool,
    },
    /// Read a shared counter and report its value on stdout.
    PrintCounter(CounterId),
    /// Issue a system call.
    Syscall(SyscallSpec),
    /// Repeat the nested actions `times` times.
    Repeat {
        /// Number of repetitions.
        times: u64,
        /// Body to repeat.
        body: Vec<Action>,
    },
    /// Do nothing (padding; also used by diversity-perturbation tests).
    Nop,
}

impl Action {
    /// A rough instruction-count estimate for one execution of this action,
    /// used by the deterministic-multithreading baseline, which schedules by
    /// logical thread progress (and is therefore sensitive to diversity).
    pub fn instruction_estimate(&self) -> u64 {
        match self {
            Action::Compute(units) => *units,
            Action::LockAcquire(_) | Action::LockRelease(_) => 8,
            Action::AtomicAdd { .. } => 4,
            Action::BarrierWait { .. } => 32,
            Action::QueuePush { .. } | Action::QueuePop { .. } => 24,
            Action::PrintCounter(_) => 16,
            Action::Syscall(_) => 64,
            Action::Repeat { times, body } => {
                times * body.iter().map(Action::instruction_estimate).sum::<u64>()
            }
            Action::Nop => 1,
        }
    }
}

/// The action list of one logical thread.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ThreadSpec {
    /// Actions executed in order.
    pub actions: Vec<Action>,
}

impl ThreadSpec {
    /// Creates a thread from its action list.
    pub fn new(actions: Vec<Action>) -> Self {
        ThreadSpec { actions }
    }

    /// Estimated instruction count of the whole thread.
    pub fn instruction_estimate(&self) -> u64 {
        self.actions.iter().map(Action::instruction_estimate).sum()
    }
}

/// A complete multi-threaded program.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Program name (used in reports).
    pub name: String,
    /// One spec per logical thread; thread 0 is the initial thread.
    pub threads: Vec<ThreadSpec>,
    /// Number of spinlocks the program declares.
    pub locks: u32,
    /// Number of barriers the program declares.
    pub barriers: u32,
    /// Number of task queues the program declares.
    pub queues: u32,
    /// Number of shared counters the program declares.
    pub counters: u32,
    /// Files installed in the simulated file system before the run.
    pub files: Vec<(String, Vec<u8>)>,
}

impl Program {
    /// Creates an empty program with the given name.
    pub fn new(name: &str) -> Self {
        Program {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Adds a thread (builder style) and returns its index.
    pub fn add_thread(&mut self, spec: ThreadSpec) -> usize {
        self.threads.push(spec);
        self.threads.len() - 1
    }

    /// Declares shared resources (builder style).
    pub fn with_resources(mut self, locks: u32, barriers: u32, queues: u32, counters: u32) -> Self {
        self.locks = locks;
        self.barriers = barriers;
        self.queues = queues;
        self.counters = counters;
        self
    }

    /// Installs a file in the simulated VFS before the run (builder style).
    pub fn with_file(mut self, path: &str, contents: &[u8]) -> Self {
        self.files.push((path.to_string(), contents.to_vec()));
        self
    }

    /// Number of logical threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Estimated instruction count over all threads.
    pub fn instruction_estimate(&self) -> u64 {
        self.threads
            .iter()
            .map(ThreadSpec::instruction_estimate)
            .sum()
    }

    /// Counts the sync ops a single, uncontended execution would perform.
    ///
    /// Lock acquisition is counted as two ops (one successful CAS plus the
    /// release store is counted separately), barriers as `participants + 1`
    /// reads on average; this is an estimate used for workload calibration,
    /// not an exact prediction.
    pub fn estimated_sync_ops(&self) -> u64 {
        fn count(actions: &[Action]) -> u64 {
            actions
                .iter()
                .map(|a| match a {
                    Action::LockAcquire(_) => 1,
                    Action::LockRelease(_) => 1,
                    Action::AtomicAdd { .. } => 1,
                    Action::BarrierWait { participants, .. } => u64::from(*participants) + 1,
                    Action::QueuePush { .. } | Action::QueuePop { .. } => 4,
                    Action::Repeat { times, body } => times * count(body),
                    _ => 0,
                })
                .sum()
        }
        self.threads.iter().map(|t| count(&t.actions)).sum()
    }

    /// Counts the system calls a single execution performs (excluding the
    /// bookkeeping calls the executor adds, such as `clone`/`exit_group`).
    pub fn estimated_syscalls(&self) -> u64 {
        fn count(actions: &[Action]) -> u64 {
            actions
                .iter()
                .map(|a| match a {
                    Action::Syscall(_) => 1,
                    Action::QueuePop { print: true, .. } => 1,
                    Action::PrintCounter(_) => 1,
                    Action::Repeat { times, body } => times * count(body),
                    _ => 0,
                })
                .sum()
        }
        self.threads.iter().map(|t| count(&t.actions)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> Program {
        let mut p = Program::new("sample").with_resources(2, 1, 1, 1);
        p.add_thread(ThreadSpec::new(vec![
            Action::Compute(100),
            Action::LockAcquire(0),
            Action::AtomicAdd {
                counter: 0,
                amount: 1,
            },
            Action::LockRelease(0),
            Action::Syscall(SyscallSpec::WriteOutput { len: 8, tag: 1 }),
        ]));
        p.add_thread(ThreadSpec::new(vec![Action::Repeat {
            times: 3,
            body: vec![
                Action::LockAcquire(1),
                Action::QueuePush { queue: 0, value: 7 },
                Action::LockRelease(1),
            ],
        }]));
        p
    }

    #[test]
    fn program_builder_collects_threads_and_resources() {
        let p = sample_program();
        assert_eq!(p.thread_count(), 2);
        assert_eq!(p.locks, 2);
        assert_eq!(p.queues, 1);
        assert_eq!(p.name, "sample");
    }

    #[test]
    fn instruction_estimates_scale_with_repeat() {
        let single = Action::LockAcquire(0).instruction_estimate();
        let repeated = Action::Repeat {
            times: 5,
            body: vec![Action::LockAcquire(0)],
        }
        .instruction_estimate();
        assert_eq!(repeated, 5 * single);
    }

    #[test]
    fn sync_op_estimate_counts_locks_and_queues() {
        let p = sample_program();
        // Thread 0: acquire + add + release = 3.
        // Thread 1: 3 * (acquire + push(4) + release) = 18.
        assert_eq!(p.estimated_sync_ops(), 3 + 18);
    }

    #[test]
    fn syscall_estimate_counts_explicit_calls_only() {
        let p = sample_program();
        assert_eq!(p.estimated_syscalls(), 1);
    }

    #[test]
    fn file_builder_installs_files() {
        let p = Program::new("io").with_file("/input.dat", b"abc");
        assert_eq!(p.files.len(), 1);
        assert_eq!(p.files[0].0, "/input.dat");
    }

    #[test]
    fn compute_estimate_equals_units() {
        assert_eq!(Action::Compute(1234).instruction_estimate(), 1234);
        assert_eq!(Action::Nop.instruction_estimate(), 1);
    }
}
