//! Run reports: what a native or MVEE execution measured.

use std::time::Duration;

use mvee_core::divergence::DivergenceReport;
use mvee_core::monitor::MonitorStats;
use mvee_sync_agent::agents::AgentKind;
use mvee_sync_agent::AgentStats;

use crate::executor::ThreadRunStats;

/// Result of running a program natively (outside the MVEE).
#[derive(Debug, Clone)]
pub struct NativeReport {
    /// Program name.
    pub program: String,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// Aggregated per-thread statistics.
    pub threads: ThreadRunStats,
    /// Console output produced by the program.
    pub output: Vec<u8>,
}

impl NativeReport {
    /// System calls per second of run time.
    pub fn syscall_rate(&self) -> f64 {
        self.threads.syscalls as f64 / self.duration.as_secs_f64().max(1e-9)
    }

    /// Sync ops per second of run time.
    pub fn sync_op_rate(&self) -> f64 {
        self.threads.sync_ops as f64 / self.duration.as_secs_f64().max(1e-9)
    }
}

/// Result of running a program under the MVEE.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Program name.
    pub program: String,
    /// Number of variants that ran.
    pub variants: usize,
    /// The injected synchronization agent.
    pub agent: AgentKind,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// Aggregated statistics over all variants' threads.
    pub threads: ThreadRunStats,
    /// Monitor counters.
    pub monitor: MonitorStats,
    /// Agent counters.
    pub agent_stats: AgentStats,
    /// The divergence report, if the MVEE shut the variants down.  Stays
    /// `None` under `RecoveryPolicy::Quarantine` while the run keeps
    /// serving on a degraded quorum — check [`quarantined`](Self::quarantined)
    /// for dropped variants.
    pub divergence: Option<DivergenceReport>,
    /// Variants still quarantined when the run ended, in index order.
    pub quarantined: Vec<usize>,
    /// Total snapshot records captured across all variants (zero unless
    /// the run configured `with_snapshot_every`).
    pub snapshots: u64,
    /// Console output of each variant (only the master's output would be
    /// visible to a real user; the others are kept for verification).
    pub outputs: Vec<Vec<u8>>,
}

impl RunReport {
    /// Whether the run completed without divergence.
    pub fn completed_cleanly(&self) -> bool {
        self.divergence.is_none() && !self.threads.killed
    }

    /// Whether the run finished on a degraded quorum: no run-ending
    /// divergence, but at least one variant was quarantined and never
    /// respawned.
    pub fn completed_degraded(&self) -> bool {
        self.divergence.is_none() && !self.quarantined.is_empty()
    }

    /// Whether every variant that produced console output produced the same
    /// bytes.
    ///
    /// Because the monitor executes I/O only in the master variant and
    /// replicates the results, slave variants normally have *empty* console
    /// buffers — their would-be output was compared against the master's at
    /// the rendezvous instead of being written.  Non-empty outputs therefore
    /// only appear for the master (or for every variant when running with the
    /// `NoComparison` policy in tests), and those must agree byte for byte.
    pub fn outputs_identical(&self) -> bool {
        let non_empty: Vec<&Vec<u8>> = self.outputs.iter().filter(|o| !o.is_empty()).collect();
        match non_empty.first() {
            Some(first) => non_empty.iter().all(|o| o == first),
            None => true,
        }
    }

    /// The console output visible to the user (the master variant's output).
    pub fn master_output(&self) -> &[u8] {
        self.outputs.first().map(Vec::as_slice).unwrap_or(&[])
    }

    /// Relative slowdown with respect to a native run of the same program.
    pub fn slowdown_vs(&self, native: &NativeReport) -> f64 {
        self.duration.as_secs_f64() / native.duration.as_secs_f64().max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn native(ms: u64) -> NativeReport {
        NativeReport {
            program: "p".into(),
            duration: Duration::from_millis(ms),
            threads: ThreadRunStats {
                syscalls: 100,
                sync_ops: 1000,
                instructions: 10_000,
                killed: false,
                syscall_errors: 0,
            },
            output: b"ok".to_vec(),
        }
    }

    fn run(ms: u64, outputs: Vec<Vec<u8>>) -> RunReport {
        RunReport {
            program: "p".into(),
            variants: outputs.len(),
            agent: AgentKind::WallOfClocks,
            duration: Duration::from_millis(ms),
            threads: ThreadRunStats::default(),
            monitor: MonitorStats::default(),
            agent_stats: AgentStats::default(),
            divergence: None,
            quarantined: Vec::new(),
            snapshots: 0,
            outputs,
        }
    }

    #[test]
    fn rates_are_per_second() {
        let n = native(500);
        assert!((n.syscall_rate() - 200.0).abs() < 1.0);
        assert!((n.sync_op_rate() - 2000.0).abs() < 10.0);
    }

    #[test]
    fn slowdown_is_relative_to_native() {
        let n = native(100);
        let r = run(150, vec![b"a".to_vec(), b"a".to_vec()]);
        assert!((r.slowdown_vs(&n) - 1.5).abs() < 0.01);
    }

    #[test]
    fn identical_outputs_are_detected() {
        assert!(run(1, vec![b"x".to_vec(), b"x".to_vec()]).outputs_identical());
        assert!(!run(1, vec![b"x".to_vec(), b"y".to_vec()]).outputs_identical());
        assert!(run(1, vec![]).outputs_identical());
        // Slave outputs are empty because I/O is only executed by the master.
        assert!(run(1, vec![b"x".to_vec(), Vec::new()]).outputs_identical());
        assert_eq!(
            run(1, vec![b"x".to_vec(), Vec::new()]).master_output(),
            b"x"
        );
    }

    #[test]
    fn clean_completion_requires_no_divergence_and_no_kills() {
        let mut r = run(1, vec![b"x".to_vec()]);
        assert!(r.completed_cleanly());
        r.threads.killed = true;
        assert!(!r.completed_cleanly());
    }

    #[test]
    fn degraded_completion_requires_a_quarantine_without_divergence() {
        let mut r = run(1, vec![b"x".to_vec()]);
        assert!(!r.completed_degraded());
        r.quarantined = vec![1];
        assert!(r.completed_degraded());
        // A quarantined run still counts as cleanly completed: the
        // survivors finished, nothing tore down.
        assert!(r.completed_cleanly());
    }
}
