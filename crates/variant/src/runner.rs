//! Running a program natively or under a fully wired MVEE.
//!
//! [`run_native`] measures the program by itself (the "native execution" the
//! paper's Figure 5 normalizes against); [`run_mvee`] builds an
//! [`Mvee`](mvee_core::mvee::Mvee) with the requested variant count, agent
//! and policy, spawns one OS thread per (variant, logical thread) pair —
//! each acquiring its [`ThreadPort`](mvee_core::port::ThreadPort) at thread
//! start — and lets all variants run concurrently, exactly as ReMon runs
//! its variants side by side on the same machine.
//!
//! # Core pinning
//!
//! With a [`Placement::Pinned`] policy the runner threads each thread's
//! core assignment into the run: every (variant, thread) issues a
//! `sched_setaffinity` through its port before executing the program, so
//! the simulated kernel records the pinning the placement prescribes (on
//! real hardware this is where the `sched_setaffinity(2)` call would go).
//! The thread's monitor shard was already resolved from the same core map
//! at port acquisition, keeping shard state and core on the same
//! (simulated) socket.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mvee_core::config::{MveeConfig, Placement, RecoveryPolicy};
use mvee_core::mvee::Mvee;
use mvee_core::policy::MonitoringPolicy;
use mvee_kernel::kernel::Kernel;
use mvee_kernel::syscall::{SyscallRequest, Sysno};
use mvee_sync_agent::agents::AgentKind;
use mvee_sync_agent::context::AgentConfig;

use crate::diversity::DiversityProfile;
use crate::executor::{execute_thread, ThreadRunStats};
use crate::memory::VariantMemory;
use crate::port::{NativePort, SyscallPort, ThreadSyscallPort};
use crate::program::Program;
use crate::report::{NativeReport, RunReport};

/// Configuration of an MVEE run.
///
/// The shared tuning knobs (agent, policy, shards, batch, placement,
/// timeout, agent sizing) live in the embedded [`MveeConfig`]; `RunConfig`
/// only adds what is specific to driving a program: the variant count and
/// the diversity profile.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Number of variants (including the master).
    pub variants: usize,
    /// The diversity applied to the variants.
    pub diversity: DiversityProfile,
    /// The shared MVEE tuning knobs, forwarded verbatim to
    /// [`MveeBuilder::config`](mvee_core::mvee::MveeBuilder::config).
    pub mvee: MveeConfig,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            variants: 2,
            diversity: DiversityProfile::none(),
            mvee: MveeConfig::default()
                .with_agent_config(
                    AgentConfig::default()
                        .with_buffer_capacity(1 << 16)
                        .with_clock_count(512),
                )
                .with_lockstep_timeout(Duration::from_secs(10)),
        }
    }
}

impl RunConfig {
    /// Convenience constructor: `variants` variants with `agent`.
    pub fn new(variants: usize, agent: AgentKind) -> Self {
        let mut config = RunConfig {
            variants,
            ..Default::default()
        };
        config.mvee.agent = agent;
        config
    }

    /// Sets the diversity profile (builder style).
    pub fn with_diversity(mut self, diversity: DiversityProfile) -> Self {
        self.diversity = diversity;
        self
    }

    /// Sets the monitoring policy (builder style).
    pub fn with_policy(mut self, policy: MonitoringPolicy) -> Self {
        self.mvee.policy = policy;
        self
    }

    /// Sets the monitor shard count (builder style).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.mvee = self.mvee.with_shards(shards);
        self
    }

    /// Sets the comparison batch size (builder style).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.mvee = self.mvee.with_batch(batch);
        self
    }

    /// Sets the shard/core placement policy (builder style).
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.mvee.placement = placement;
        self
    }

    /// Sets how blocked agent threads wait (builder style):
    /// `WaitStrategy::SpinYield` restores the legacy fixed spin/yield loop,
    /// the ablation baseline of the adaptive default.
    pub fn with_wait_strategy(mut self, wait: mvee_sync_agent::guards::WaitStrategy) -> Self {
        self.mvee = self.mvee.with_wait_strategy(wait);
        self
    }

    /// Sets the divergence recovery policy (builder style):
    /// [`RecoveryPolicy::Quarantine`] keeps a run serving on a degraded
    /// quorum when one variant diverges, instead of tearing everything
    /// down.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.mvee = self.mvee.with_recovery(recovery);
        self
    }

    /// Snapshots every live variant's emulated-kernel state each `every`
    /// sync ops (builder style) — the restore points
    /// `Mvee::respawn_variant` rewinds a quarantined variant to.
    pub fn with_snapshot_every(mut self, every: u64) -> Self {
        self.mvee = self.mvee.with_snapshot_every(Some(every));
        self
    }
}

/// Runs `program` natively (one instance, no monitor, no replication) and
/// returns what it measured.
pub fn run_native(program: &Program) -> NativeReport {
    let kernel = Arc::new(Kernel::new());
    let pid = kernel.spawn_process();
    for (path, contents) in &program.files {
        kernel.install_file(path, contents);
    }
    let port: Arc<dyn SyscallPort> = Arc::new(NativePort::new(Arc::clone(&kernel), pid));
    let memory = Arc::new(VariantMemory::for_program(program, 0x7f10_0000_0000));

    let start = Instant::now();
    let program_arc = Arc::new(program.clone());
    let mut handles = Vec::new();
    for t in 0..program.thread_count() {
        let program = Arc::clone(&program_arc);
        let port = Arc::clone(&port);
        let memory = Arc::clone(&memory);
        handles.push(std::thread::spawn(move || {
            let thread_port = port.thread_port(t);
            execute_thread(&program, t, &*thread_port, &memory, 1.0)
        }));
    }
    let mut threads = ThreadRunStats::default();
    for h in handles {
        threads.merge(&h.join().expect("native thread panicked"));
    }
    let duration = start.elapsed();
    NativeReport {
        program: program.name.clone(),
        duration,
        threads,
        output: kernel.console_output(pid),
    }
}

/// Issues the placement-prescribed `sched_setaffinity` for `thread`, if the
/// placement pins cores.  Returns `false` when the MVEE shut down before
/// the call went through.
fn pin_thread(port: &dyn ThreadSyscallPort, placement: &Placement, thread: usize) -> bool {
    match placement.core_for(thread) {
        Some(core) => port
            .syscall(&SyscallRequest::new(Sysno::SchedSetaffinity).with_int(core as i64))
            .is_ok(),
        None => true,
    }
}

/// Runs `program` under the MVEE described by `config`.
pub fn run_mvee(program: &Program, config: &RunConfig) -> RunReport {
    assert!(config.variants >= 1, "need at least one variant");
    assert!(
        program.thread_count() >= 1,
        "program needs at least one thread"
    );

    let layouts = (0..config.variants)
        .map(|v| config.diversity.layout_for(v))
        .collect();
    let mvee = Mvee::builder()
        .variants(config.variants)
        .threads(program.thread_count())
        .config(config.mvee.clone())
        .layouts(layouts)
        .build();

    for (path, contents) in &program.files {
        mvee.kernel().install_file(path, contents);
    }

    let program_arc = Arc::new(program.clone());
    let placement = config.mvee.placement.clone();
    let start = Instant::now();
    let mut handles = Vec::new();
    for v in 0..config.variants {
        let gateway = mvee.gateway(v);
        let memory = Arc::new(VariantMemory::for_program(
            program,
            config.diversity.sync_base_for(v),
        ));
        let factor = config.diversity.instruction_factor_for(v);
        let port: Arc<dyn SyscallPort> = Arc::new(gateway);
        for t in 0..program.thread_count() {
            let program = Arc::clone(&program_arc);
            let port = Arc::clone(&port);
            let memory = Arc::clone(&memory);
            let placement = placement.clone();
            handles.push(std::thread::spawn(move || {
                let thread_port = port.thread_port(t);
                if !pin_thread(&*thread_port, &placement, t) {
                    return ThreadRunStats {
                        killed: true,
                        ..Default::default()
                    };
                }
                execute_thread(&program, t, &*thread_port, &memory, factor)
            }));
        }
    }
    let mut threads = ThreadRunStats::default();
    for h in handles {
        threads.merge(&h.join().expect("variant thread panicked"));
    }
    let duration = start.elapsed();

    let outputs = (0..config.variants)
        .map(|v| mvee.kernel().console_output(mvee.pid_of(v)))
        .collect();
    let snapshots = mvee.snapshot_store().map_or(0, |store| {
        (0..config.variants).map(|v| store.taken(v)).sum()
    });

    RunReport {
        program: program.name.clone(),
        variants: config.variants,
        agent: config.mvee.agent,
        duration,
        threads,
        monitor: mvee.monitor_stats(),
        agent_stats: mvee.agent_stats(),
        divergence: mvee.divergence(),
        quarantined: mvee.quarantined_variants(),
        snapshots,
        outputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Action, SyscallSpec, ThreadSpec};

    /// A small producer/consumer program whose console output depends on the
    /// order in which the consumer threads pop the queue.
    fn queue_program(items: u64) -> Program {
        let mut p = Program::new("queue-test").with_resources(1, 1, 1, 1);
        p.add_thread(ThreadSpec::new(vec![
            Action::Repeat {
                times: items,
                body: vec![Action::QueuePush { queue: 0, value: 7 }],
            },
            Action::BarrierWait {
                barrier: 0,
                participants: 3,
            },
        ]));
        for _ in 0..2 {
            p.add_thread(ThreadSpec::new(vec![
                Action::BarrierWait {
                    barrier: 0,
                    participants: 3,
                },
                Action::Repeat {
                    times: items / 2,
                    body: vec![
                        Action::QueuePop {
                            queue: 0,
                            print: true,
                        },
                        Action::Compute(50),
                    ],
                },
            ]));
        }
        p
    }

    fn io_program() -> Program {
        let mut p = Program::new("io-test")
            .with_resources(1, 0, 0, 1)
            .with_file("/in.dat", b"abcdefghijklmnopqrstuvwxyz");
        p.add_thread(ThreadSpec::new(vec![
            Action::Syscall(SyscallSpec::OpenInput {
                path: "/in.dat".into(),
            }),
            Action::Syscall(SyscallSpec::ReadChunk { len: 13 }),
            Action::Syscall(SyscallSpec::WriteOutput { len: 32, tag: 0xAB }),
            Action::Syscall(SyscallSpec::CloseCurrent),
            Action::Repeat {
                times: 5,
                body: vec![
                    Action::LockAcquire(0),
                    Action::AtomicAdd {
                        counter: 0,
                        amount: 1,
                    },
                    Action::LockRelease(0),
                ],
            },
            Action::PrintCounter(0),
        ]));
        p.add_thread(ThreadSpec::new(vec![Action::Repeat {
            times: 5,
            body: vec![
                Action::LockAcquire(0),
                Action::AtomicAdd {
                    counter: 0,
                    amount: 1,
                },
                Action::LockRelease(0),
            ],
        }]));
        p
    }

    #[test]
    fn native_run_produces_output_and_counts() {
        let report = run_native(&io_program());
        assert!(!report.threads.killed);
        assert!(report.threads.syscalls >= 6);
        assert!(report.threads.sync_ops >= 21);
        // The printed counter value depends on how far thread 1 has come when
        // thread 0 reads it, but the line itself must be present and the
        // value must be at least thread 0's own five increments.
        let text = String::from_utf8_lossy(&report.output).into_owned();
        let idx = text.find("counter 0 = ").expect("counter line present");
        let value: u64 = text[idx + "counter 0 = ".len()..]
            .trim_end()
            .parse()
            .unwrap();
        assert!((5..=10).contains(&value));
    }

    #[test]
    fn two_variant_wall_of_clocks_run_completes_without_divergence() {
        let report = run_mvee(&io_program(), &RunConfig::new(2, AgentKind::WallOfClocks));
        assert!(
            report.completed_cleanly(),
            "divergence: {:?}",
            report.divergence
        );
        assert!(report.outputs_identical());
        assert!(report.agent_stats.ops_recorded > 0);
        assert!(report.agent_stats.ops_replayed > 0);
    }

    #[test]
    fn queue_program_outputs_match_across_variants_for_all_agents() {
        for agent in AgentKind::replication_agents() {
            let report = run_mvee(&queue_program(8), &RunConfig::new(2, agent));
            assert!(
                report.completed_cleanly(),
                "agent {:?} diverged: {:?}",
                agent,
                report.divergence
            );
            assert!(
                report.outputs_identical(),
                "agent {:?} produced differing outputs",
                agent
            );
        }
    }

    #[test]
    fn diversified_variants_still_agree() {
        let config =
            RunConfig::new(2, AgentKind::WallOfClocks).with_diversity(DiversityProfile::full(1234));
        let report = run_mvee(&io_program(), &config);
        assert!(
            report.completed_cleanly(),
            "divergence: {:?}",
            report.divergence
        );
        assert!(report.outputs_identical());
    }

    #[test]
    fn three_variants_replay_twice_as_many_ops() {
        let report = run_mvee(&io_program(), &RunConfig::new(3, AgentKind::WallOfClocks));
        assert!(report.completed_cleanly());
        assert!(report.agent_stats.ops_replayed >= 2 * report.agent_stats.ops_recorded);
    }

    #[test]
    fn sharded_and_unsharded_monitors_both_run_cleanly() {
        for shards in [1usize, 8] {
            let config = RunConfig::new(2, AgentKind::WallOfClocks).with_shards(shards);
            let report = run_mvee(&io_program(), &config);
            assert!(
                report.completed_cleanly(),
                "shards={shards} diverged: {:?}",
                report.divergence
            );
            assert!(report.outputs_identical(), "shards={shards}");
        }
    }

    #[test]
    fn every_placement_runs_cleanly() {
        for placement in [
            Placement::RoundRobin,
            Placement::Grouped,
            Placement::pinned(vec![0, 0, 1, 1]),
        ] {
            let config =
                RunConfig::new(2, AgentKind::WallOfClocks).with_placement(placement.clone());
            let report = run_mvee(&io_program(), &config);
            assert!(
                report.completed_cleanly(),
                "{} diverged: {:?}",
                placement.name(),
                report.divergence
            );
            assert!(report.outputs_identical(), "{}", placement.name());
        }
    }

    #[test]
    fn pinned_placement_records_affinity_in_every_variant() {
        let config = RunConfig::new(2, AgentKind::WallOfClocks)
            .with_placement(Placement::pinned(vec![3, 5]));
        let report = run_mvee(&io_program(), &config);
        assert!(report.completed_cleanly(), "{:?}", report.divergence);
        // Re-run the scenario with an inspectable kernel: drive the pin call
        // through a port directly.
        let mvee = Mvee::builder()
            .variants(2)
            .policy(MonitoringPolicy::NoComparison)
            .placement(Placement::pinned(vec![3, 5]))
            .manual_clock(true)
            .build();
        for v in 0..2 {
            let port = mvee.thread_port(v, 1);
            port.syscall(&SyscallRequest::new(Sysno::SchedSetaffinity).with_int(5))
                .unwrap();
            assert_eq!(mvee.kernel().thread_affinity(mvee.pid_of(v), 1), Some(5));
        }
    }

    /// A brk-dense program: the address-space calls are exactly the class
    /// whose comparisons the batched monitor defers.  Only thread 0 grows
    /// the (process-shared) break, so the compared brk targets are
    /// deterministic; thread 1 supplies sync-op traffic so the agent's
    /// replication-point flush hook fires too.
    fn brk_program() -> Program {
        let mut p = Program::new("brk-test").with_resources(1, 0, 0, 1);
        p.add_thread(ThreadSpec::new(vec![
            Action::Repeat {
                times: 12,
                body: vec![
                    Action::Syscall(SyscallSpec::BrkGrow { grow: 4096 }),
                    Action::LockAcquire(0),
                    Action::AtomicAdd {
                        counter: 0,
                        amount: 1,
                    },
                    Action::LockRelease(0),
                ],
            },
            Action::Syscall(SyscallSpec::WriteOutput { len: 16, tag: 7 }),
        ]));
        p.add_thread(ThreadSpec::new(vec![Action::Repeat {
            times: 12,
            body: vec![
                Action::LockAcquire(0),
                Action::AtomicAdd {
                    counter: 0,
                    amount: 1,
                },
                Action::LockRelease(0),
            ],
        }]));
        p
    }

    #[test]
    fn batched_and_unbatched_monitors_both_run_cleanly() {
        for batch in [1usize, 4, 64] {
            let config = RunConfig::new(2, AgentKind::WallOfClocks).with_batch(batch);
            let report = run_mvee(&brk_program(), &config);
            assert!(
                report.completed_cleanly(),
                "batch={batch} diverged: {:?}",
                report.divergence
            );
            assert!(report.outputs_identical(), "batch={batch}");
            if batch > 1 {
                assert!(
                    report.monitor.batched_comparisons > 0,
                    "batch={batch} never deferred a comparison"
                );
            } else {
                assert_eq!(report.monitor.batched_comparisons, 0);
            }
        }
    }

    #[test]
    fn single_variant_run_works_with_null_agent() {
        let report = run_mvee(&io_program(), &RunConfig::new(1, AgentKind::Null));
        assert!(report.completed_cleanly());
        assert_eq!(report.variants, 1);
    }

    #[test]
    fn snapshotting_run_captures_records_without_changing_the_verdict() {
        let config = RunConfig::new(2, AgentKind::WallOfClocks).with_snapshot_every(4);
        let report = run_mvee(&io_program(), &config);
        assert!(
            report.completed_cleanly(),
            "divergence: {:?}",
            report.divergence
        );
        assert!(report.outputs_identical());
        assert!(
            report.snapshots > 0,
            "a sync-op-heavy run must cross the 4-op snapshot interval"
        );
        let bare = run_mvee(&io_program(), &RunConfig::new(2, AgentKind::WallOfClocks));
        assert_eq!(bare.snapshots, 0, "snapshotting defaults off");
    }

    #[test]
    fn quarantine_policy_changes_nothing_on_a_clean_run() {
        let config = RunConfig::new(2, AgentKind::WallOfClocks)
            .with_recovery(RecoveryPolicy::quarantine())
            .with_snapshot_every(8);
        let report = run_mvee(&io_program(), &config);
        assert!(
            report.completed_cleanly(),
            "divergence: {:?}",
            report.divergence
        );
        assert!(!report.completed_degraded());
        assert!(report.quarantined.is_empty());
        assert_eq!(report.monitor.quarantines, 0);
        assert_eq!(report.monitor.respawns, 0);
        assert_eq!(report.monitor.degraded_calls, 0);
        assert!(report.outputs_identical());
    }
}
