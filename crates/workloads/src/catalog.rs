//! The PARSEC 2.1 / SPLASH-2x workload catalog (Table 2 of the paper).
//!
//! Each [`BenchmarkSpec`] carries the numbers the paper reports for the
//! benchmark run with four worker threads — native run time in seconds,
//! system calls per second and sync ops per second — plus a qualitative
//! *topology* describing how its threads interact.  [`BenchmarkSpec::program`]
//! expands the spec into a runnable [`Program`] whose rates approximate a
//! scaled-down version of the original: the synthetic program performs
//! `rate × scaled-duration` system calls and sync ops spread over the same
//! number of worker threads.
//!
//! The catalog excludes `canneal` (intentionally racy, fundamentally
//! incompatible with an MVEE) and `cholesky` (does not build on the paper's
//! system), exactly as the paper does (§5.1).

use serde::{Deserialize, Serialize};

use mvee_variant::program::{Action, Program, SyscallSpec, ThreadSpec};

/// Which suite a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// PARSEC 2.1.
    Parsec,
    /// SPLASH-2x.
    Splash2x,
    /// Synthetic additions beyond the paper's Table 2 (the allocator-churn
    /// workloads of [`CHURN_CATALOG`]); kept out of [`CATALOG`] so the
    /// paper-shaped aggregates stay comparable.
    Synthetic,
}

impl Suite {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Suite::Parsec => "PARSEC 2.1",
            Suite::Splash2x => "SPLASH-2x",
            Suite::Synthetic => "synthetic",
        }
    }
}

/// How the benchmark's threads interact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topology {
    /// Independent workers that synchronize at phase barriers and touch a few
    /// shared counters (most SPLASH kernels, blackscholes, ...).
    DataParallel,
    /// A producer/transform/consumer pipeline over shared queues
    /// (dedup, ferret, vips).
    Pipeline,
    /// A central task queue all workers contend on
    /// (radiosity, raytrace, bodytrack).
    TaskQueue,
    /// Allocator churn: the syscall stream is dominated by address-space
    /// calls — thread 0 grows the (process-shared) break, workers map
    /// anonymous memory — the compare-only class whose comparisons the
    /// batched monitor defers.  Not a paper topology; added so the
    /// `MVEE_BENCH_BATCH` sweep moves on the paper-shaped tables instead of
    /// only on `ablation_batching`.
    AllocatorChurn,
    /// Lock-heavy contention: every thread hammers a *small shared* set of
    /// locks with almost no compute between acquisitions, so nearly all
    /// run time is spent inside the agents' record/replay waits.  Not a
    /// paper topology; added so the `ablation_agent` wait-strategy sweep
    /// measures the agent hot path instead of the workload around it.
    LockHeavy,
}

/// One benchmark of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkSpec {
    /// Benchmark name as printed in the paper.
    pub name: &'static str,
    /// Which suite it belongs to.
    pub suite: Suite,
    /// Native run time in seconds (Table 2, four worker threads).
    pub native_runtime_s: f64,
    /// System calls per second (Table 2 reports thousands/sec).
    pub syscalls_per_s: f64,
    /// Sync ops per second (Table 2 reports thousands/sec).
    pub sync_ops_per_s: f64,
    /// Thread topology.
    pub topology: Topology,
}

/// Table 2 of the paper, converted to calls/second and ops/second.
pub const CATALOG: &[BenchmarkSpec] = &[
    BenchmarkSpec {
        name: "blackscholes",
        suite: Suite::Parsec,
        native_runtime_s: 80.83,
        syscalls_per_s: 2_550.0,
        sync_ops_per_s: 0.0,
        topology: Topology::DataParallel,
    },
    BenchmarkSpec {
        name: "bodytrack",
        suite: Suite::Parsec,
        native_runtime_s: 60.06,
        syscalls_per_s: 8_590.0,
        sync_ops_per_s: 202_360.0,
        topology: Topology::TaskQueue,
    },
    BenchmarkSpec {
        name: "dedup",
        suite: Suite::Parsec,
        native_runtime_s: 18.29,
        syscalls_per_s: 134_270.0,
        sync_ops_per_s: 1_052_450.0,
        topology: Topology::Pipeline,
    },
    BenchmarkSpec {
        name: "facesim",
        suite: Suite::Parsec,
        native_runtime_s: 142.52,
        syscalls_per_s: 4_140.0,
        sync_ops_per_s: 288_750.0,
        topology: Topology::DataParallel,
    },
    BenchmarkSpec {
        name: "ferret",
        suite: Suite::Parsec,
        native_runtime_s: 103.79,
        syscalls_per_s: 2_290.0,
        sync_ops_per_s: 225_100.0,
        topology: Topology::Pipeline,
    },
    BenchmarkSpec {
        name: "fluidanimate",
        suite: Suite::Parsec,
        native_runtime_s: 93.19,
        syscalls_per_s: 450.0,
        sync_ops_per_s: 12_746_590.0,
        topology: Topology::DataParallel,
    },
    BenchmarkSpec {
        name: "freqmine",
        suite: Suite::Parsec,
        native_runtime_s: 168.66,
        syscalls_per_s: 350.0,
        sync_ops_per_s: 240.0,
        topology: Topology::DataParallel,
    },
    BenchmarkSpec {
        name: "raytrace",
        suite: Suite::Parsec,
        native_runtime_s: 147.54,
        syscalls_per_s: 780.0,
        sync_ops_per_s: 88_330.0,
        topology: Topology::TaskQueue,
    },
    BenchmarkSpec {
        name: "streamcluster",
        suite: Suite::Parsec,
        native_runtime_s: 136.05,
        syscalls_per_s: 5_630.0,
        sync_ops_per_s: 18_780.0,
        topology: Topology::DataParallel,
    },
    BenchmarkSpec {
        name: "swaptions",
        suite: Suite::Parsec,
        native_runtime_s: 86.68,
        syscalls_per_s: 10.0,
        sync_ops_per_s: 4_585_650.0,
        topology: Topology::DataParallel,
    },
    BenchmarkSpec {
        name: "vips",
        suite: Suite::Parsec,
        native_runtime_s: 37.09,
        syscalls_per_s: 15_760.0,
        sync_ops_per_s: 428_690.0,
        topology: Topology::Pipeline,
    },
    BenchmarkSpec {
        name: "x264",
        suite: Suite::Parsec,
        native_runtime_s: 34.73,
        syscalls_per_s: 500.0,
        sync_ops_per_s: 15_980.0,
        topology: Topology::Pipeline,
    },
    BenchmarkSpec {
        name: "barnes",
        suite: Suite::Splash2x,
        native_runtime_s: 61.15,
        syscalls_per_s: 19_610.0,
        sync_ops_per_s: 5_115_990.0,
        topology: Topology::DataParallel,
    },
    BenchmarkSpec {
        name: "fft",
        suite: Suite::Splash2x,
        native_runtime_s: 40.26,
        syscalls_per_s: 10.0,
        sync_ops_per_s: 1_640.0,
        topology: Topology::DataParallel,
    },
    BenchmarkSpec {
        name: "fmm",
        suite: Suite::Splash2x,
        native_runtime_s: 42.68,
        syscalls_per_s: 910.0,
        sync_ops_per_s: 5_215_010.0,
        topology: Topology::DataParallel,
    },
    BenchmarkSpec {
        name: "lu_cb",
        suite: Suite::Splash2x,
        native_runtime_s: 51.16,
        syscalls_per_s: 80.0,
        sync_ops_per_s: 230.0,
        topology: Topology::DataParallel,
    },
    BenchmarkSpec {
        name: "lu_ncb",
        suite: Suite::Splash2x,
        native_runtime_s: 73.55,
        syscalls_per_s: 50.0,
        sync_ops_per_s: 160.0,
        topology: Topology::DataParallel,
    },
    BenchmarkSpec {
        name: "ocean_cp",
        suite: Suite::Splash2x,
        native_runtime_s: 39.39,
        syscalls_per_s: 1_210.0,
        sync_ops_per_s: 5_050.0,
        topology: Topology::DataParallel,
    },
    BenchmarkSpec {
        name: "ocean_ncp",
        suite: Suite::Splash2x,
        native_runtime_s: 41.68,
        syscalls_per_s: 1_080.0,
        sync_ops_per_s: 4_550.0,
        topology: Topology::DataParallel,
    },
    BenchmarkSpec {
        name: "radiosity",
        suite: Suite::Splash2x,
        native_runtime_s: 45.56,
        syscalls_per_s: 33_420.0,
        sync_ops_per_s: 18_252_680.0,
        topology: Topology::TaskQueue,
    },
    BenchmarkSpec {
        name: "radix",
        suite: Suite::Splash2x,
        native_runtime_s: 18.22,
        syscalls_per_s: 20.0,
        sync_ops_per_s: 40.0,
        topology: Topology::DataParallel,
    },
    BenchmarkSpec {
        name: "raytrace_splash",
        suite: Suite::Splash2x,
        native_runtime_s: 52.52,
        syscalls_per_s: 6_630.0,
        sync_ops_per_s: 536_790.0,
        topology: Topology::TaskQueue,
    },
    BenchmarkSpec {
        name: "volrend",
        suite: Suite::Splash2x,
        native_runtime_s: 52.02,
        syscalls_per_s: 15_860.0,
        sync_ops_per_s: 1_071_250.0,
        topology: Topology::TaskQueue,
    },
    BenchmarkSpec {
        name: "water_nsquared",
        suite: Suite::Splash2x,
        native_runtime_s: 182.80,
        syscalls_per_s: 880.0,
        sync_ops_per_s: 8_610.0,
        topology: Topology::DataParallel,
    },
    BenchmarkSpec {
        name: "water_spatial",
        suite: Suite::Splash2x,
        native_runtime_s: 59.84,
        syscalls_per_s: 148_270.0,
        sync_ops_per_s: 9_630.0,
        topology: Topology::DataParallel,
    },
];

/// Allocator-churn (brk/mmap-dense) workloads beyond the paper's Table 2.
///
/// The PARSEC/SPLASH catalog is I/O- and sync-op-dominated: almost nothing
/// in it issues the compare-only address-space calls the batched monitor
/// defers, so a comparison-batching sweep over [`CATALOG`] is flat by
/// construction.  These two synthetic specs put the monitor's deferred-
/// comparison path on the paper-shaped tables: `memchurn` models a
/// glibc-malloc-style mixed brk/mmap allocator under load, `mmapstorm` a
/// mmap-per-allocation arena (jemalloc-style chunk churn).  `table1` and
/// `figure5` sweep them alongside the paper catalog.
pub const CHURN_CATALOG: &[BenchmarkSpec] = &[
    BenchmarkSpec {
        name: "memchurn",
        suite: Suite::Synthetic,
        native_runtime_s: 20.0,
        syscalls_per_s: 180_000.0,
        sync_ops_per_s: 60_000.0,
        topology: Topology::AllocatorChurn,
    },
    BenchmarkSpec {
        name: "mmapstorm",
        suite: Suite::Synthetic,
        native_runtime_s: 12.0,
        syscalls_per_s: 260_000.0,
        sync_ops_per_s: 9_000.0,
        topology: Topology::AllocatorChurn,
    },
];

/// Contention-heavy workloads beyond the paper's Table 2.
///
/// `lockheavy` spends essentially all of its time in sync ops on a handful
/// of *shared* locks: every acquisition is a record (master) or an ordered
/// replay wait (slave), which makes it the workload where the agents' wait
/// discipline — spin/yield vs the adaptive spin → yield → park escalation —
/// dominates end-to-end time.  The `ablation_agent` benchmark sweeps it
/// across wait strategies, agent kinds and thread counts; like the churn
/// catalog it stays out of [`CATALOG`] so the paper-shaped aggregates
/// remain comparable.
pub const CONTENTION_CATALOG: &[BenchmarkSpec] = &[BenchmarkSpec {
    name: "lockheavy",
    suite: Suite::Synthetic,
    native_runtime_s: 15.0,
    syscalls_per_s: 1_200.0,
    sync_ops_per_s: 6_000_000.0,
    topology: Topology::LockHeavy,
}];

/// The full benchmark sweep the `table1`/`figure5` binaries run: the
/// paper's Table 2 catalog plus the allocator-churn additions.
pub fn sweep_catalog() -> impl Iterator<Item = &'static BenchmarkSpec> {
    CATALOG.iter().chain(CHURN_CATALOG.iter())
}

/// Number of worker threads the paper uses for every benchmark.
pub const PAPER_WORKER_THREADS: usize = 4;

/// Abstract compute units the synthetic programs execute per second of
/// simulated run time.  The busy-work loop retires roughly one unit per
/// nanosecond on a modern core, so this constant keeps the scaled run times
/// in the low-millisecond range used by the benchmark harness.
pub const COMPUTE_UNITS_PER_SECOND: f64 = 4.0e8;

impl BenchmarkSpec {
    /// Looks a benchmark up by name, in the paper catalog, the
    /// allocator-churn additions and the contention additions.
    pub fn by_name(name: &str) -> Option<&'static BenchmarkSpec> {
        sweep_catalog()
            .chain(CONTENTION_CATALOG.iter())
            .find(|b| b.name == name)
    }

    /// Total system calls over the (unscaled) native run.
    pub fn total_syscalls(&self) -> f64 {
        self.native_runtime_s * self.syscalls_per_s
    }

    /// Total sync ops over the (unscaled) native run.
    pub fn total_sync_ops(&self) -> f64 {
        self.native_runtime_s * self.sync_ops_per_s
    }

    /// Expands the spec into a runnable [`Program`].
    ///
    /// `scale` compresses the native run time: `scale = 1e-4` turns an 80 s
    /// benchmark into an ~8 ms synthetic run with proportionally fewer system
    /// calls and sync ops (the *rates* are preserved, which is what the
    /// agents' overhead depends on).
    pub fn program(&self, threads: usize, scale: f64) -> Program {
        let duration_s = (self.native_runtime_s * scale).max(1e-4);
        let total_syscalls = (self.total_syscalls() * scale).max(2.0) as u64;
        let total_sync_ops = (self.total_sync_ops() * scale) as u64;
        let total_compute = (duration_s * COMPUTE_UNITS_PER_SECOND) as u64;
        match self.topology {
            Topology::DataParallel => data_parallel_program(
                self.name,
                threads,
                total_compute,
                total_sync_ops,
                total_syscalls,
            ),
            Topology::Pipeline => pipeline_program(
                self.name,
                threads,
                total_compute,
                total_sync_ops,
                total_syscalls,
            ),
            Topology::TaskQueue => task_queue_program(
                self.name,
                threads,
                total_compute,
                total_sync_ops,
                total_syscalls,
            ),
            Topology::AllocatorChurn => allocator_churn_program(
                self.name,
                threads,
                total_compute,
                total_sync_ops,
                total_syscalls,
            ),
            Topology::LockHeavy => lock_heavy_program(
                self.name,
                threads,
                total_compute,
                total_sync_ops,
                total_syscalls,
            ),
        }
    }

    /// The paper's configuration: four worker threads.
    pub fn paper_program(&self, scale: f64) -> Program {
        self.program(PAPER_WORKER_THREADS, scale)
    }
}

/// Data-parallel topology: each worker loops over (compute, a few mostly
/// uncontended sync ops, an occasional syscall) and meets the others at a
/// barrier at the end.
fn data_parallel_program(
    name: &str,
    threads: usize,
    compute: u64,
    sync_ops: u64,
    syscalls: u64,
) -> Program {
    let threads = threads.max(1);
    let mut p = Program::new(name)
        .with_resources(threads as u32 + 2, 1, 0, threads as u32)
        .with_file("/input.dat", &vec![0x5a; 64 * 1024]);
    let iters_per_thread = 64u64;
    let compute_per_iter = (compute / threads as u64 / iters_per_thread).max(1);
    // Each loop iteration performs: acquire+release of a (mostly private)
    // lock (2 ops) + one atomic add (1 op) = 3 sync ops.
    let sync_per_thread = sync_ops / threads as u64;
    let iterations = (sync_per_thread / 3).clamp(1, 100_000);
    let compute_per_iter = compute_per_iter * iters_per_thread / iterations.max(1);
    let syscall_period = (iterations / (syscalls / threads as u64).max(1)).max(1);

    for t in 0..threads {
        let own_lock = t as u32;
        let shared_lock = threads as u32; // one contended lock shared by all
        let mut body = vec![
            Action::Compute(compute_per_iter.max(1)),
            Action::LockAcquire(if t % 4 == 0 { shared_lock } else { own_lock }),
            Action::AtomicAdd {
                counter: t as u32,
                amount: 1,
            },
            Action::LockRelease(if t % 4 == 0 { shared_lock } else { own_lock }),
        ];
        if syscall_period <= iterations {
            body.push(Action::Syscall(SyscallSpec::Gettimeofday));
        }
        let mut actions = vec![Action::Syscall(SyscallSpec::OpenInput {
            path: "/input.dat".into(),
        })];
        actions.push(Action::Syscall(SyscallSpec::ReadChunk { len: 4096 }));
        actions.push(Action::Repeat {
            times: iterations,
            body,
        });
        actions.push(Action::BarrierWait {
            barrier: 0,
            participants: threads as u32,
        });
        actions.push(Action::Syscall(SyscallSpec::WriteOutput {
            len: 64,
            tag: t as u64,
        }));
        p.add_thread(ThreadSpec::new(actions));
    }
    p
}

/// Pipeline topology (dedup/ferret/vips): thread 0 produces items into a
/// queue, interior threads move items between queues, the last thread
/// consumes and writes output.  Every hand-off is lock-protected, so the
/// sync-op rate tracks the item rate.
fn pipeline_program(
    name: &str,
    threads: usize,
    compute: u64,
    sync_ops: u64,
    syscalls: u64,
) -> Program {
    let threads = threads.max(2);
    let stages = threads;
    let queues = (stages - 1) as u32;
    let mut p = Program::new(name)
        .with_resources(2, 1, queues, 1)
        .with_file("/stream.dat", &vec![0xa5; 128 * 1024]);
    // Each item crosses `queues` queues; each crossing is a push + pop, each
    // of which is ~4 sync ops (lock CAS, release, plus the data moves).
    let items = (sync_ops / (u64::from(queues) * 8).max(1)).clamp(8, 20_000);
    let compute_per_item = (compute / items.max(1) / stages as u64).max(1);
    let write_period = (items / syscalls.max(1)).max(1);

    // Stage 0: producer.
    let mut producer = vec![Action::Syscall(SyscallSpec::OpenInput {
        path: "/stream.dat".into(),
    })];
    producer.push(Action::Repeat {
        times: items,
        body: vec![
            Action::Syscall(SyscallSpec::ReadChunk { len: 1024 }),
            Action::Compute(compute_per_item),
            Action::QueuePush { queue: 0, value: 1 },
        ],
    });
    producer.push(Action::BarrierWait {
        barrier: 0,
        participants: stages as u32,
    });
    p.add_thread(ThreadSpec::new(producer));

    // Interior stages.
    for s in 1..stages - 1 {
        let input_queue = (s - 1) as u32;
        let output_queue = s as u32;
        p.add_thread(ThreadSpec::new(vec![
            Action::Repeat {
                times: items,
                body: vec![
                    Action::QueuePop {
                        queue: input_queue,
                        print: false,
                    },
                    Action::Compute(compute_per_item),
                    Action::QueuePush {
                        queue: output_queue,
                        value: 1,
                    },
                ],
            },
            Action::BarrierWait {
                barrier: 0,
                participants: stages as u32,
            },
        ]));
    }

    // Final stage: consumer writing output.
    let last_queue = (stages - 2) as u32;
    p.add_thread(ThreadSpec::new(vec![
        Action::Repeat {
            times: items / write_period.max(1),
            body: vec![
                Action::Repeat {
                    times: write_period,
                    body: vec![
                        Action::QueuePop {
                            queue: last_queue,
                            print: false,
                        },
                        Action::Compute(compute_per_item),
                        Action::AtomicAdd {
                            counter: 0,
                            amount: 1,
                        },
                    ],
                },
                Action::Syscall(SyscallSpec::WriteOutput { len: 256, tag: 99 }),
            ],
        },
        Action::BarrierWait {
            barrier: 0,
            participants: stages as u32,
        },
    ]));
    p
}

/// Task-queue topology (radiosity/bodytrack/raytrace): thread 0 seeds a
/// central queue, then every worker (including thread 0) pops work items
/// from it under a single contended lock.
fn task_queue_program(
    name: &str,
    threads: usize,
    compute: u64,
    sync_ops: u64,
    syscalls: u64,
) -> Program {
    let threads = threads.max(1);
    let mut p = Program::new(name).with_resources(1, 1, 1, threads as u32);
    // Each task is ~8 sync ops of queue traffic plus one atomic progress add.
    let tasks = (sync_ops / 9).clamp(threads as u64 * 2, 40_000);
    let tasks_per_thread = tasks / threads as u64;
    let compute_per_task = (compute / tasks.max(1)).max(1);
    let print_period = (tasks_per_thread / (syscalls / threads as u64).max(1)).max(1);

    // Thread 0 seeds the queue, then works like everyone else.
    let mut seed = vec![Action::Repeat {
        times: tasks,
        body: vec![Action::QueuePush { queue: 0, value: 3 }],
    }];
    seed.push(Action::BarrierWait {
        barrier: 0,
        participants: threads as u32,
    });
    seed.push(worker_loop(
        0,
        tasks_per_thread,
        compute_per_task,
        print_period,
    ));
    seed.push(Action::Syscall(SyscallSpec::WriteOutput {
        len: 32,
        tag: 0,
    }));
    p.add_thread(ThreadSpec::new(seed));

    for t in 1..threads {
        p.add_thread(ThreadSpec::new(vec![
            Action::BarrierWait {
                barrier: 0,
                participants: threads as u32,
            },
            worker_loop(t as u32, tasks_per_thread, compute_per_task, print_period),
            Action::Syscall(SyscallSpec::WriteOutput {
                len: 32,
                tag: t as u64,
            }),
        ]));
    }
    p
}

/// Allocator-churn topology: the syscall stream is dominated by
/// address-space calls.  Thread 0 is the "sbrk arena": it grows the
/// process-shared break in fixed steps (only one thread may move the break,
/// or the compared targets would depend on the interleaving).  Every other
/// thread is an "mmap arena": a loop of fixed-size anonymous mappings.
/// A shared progress counter under a lock supplies enough sync-op traffic
/// that the agents' replication points (batch flush points) fire, and a
/// final barrier + small write gives the run an I/O tail.
fn allocator_churn_program(
    name: &str,
    threads: usize,
    compute: u64,
    sync_ops: u64,
    syscalls: u64,
) -> Program {
    let threads = threads.max(2);
    let mut p = Program::new(name).with_resources(1, 1, 0, 1);
    // Nearly every syscall is an address-space call; split them evenly.
    let alloc_calls_per_thread = (syscalls / threads as u64).clamp(8, 60_000);
    let compute_per_call = (compute / threads as u64 / alloc_calls_per_thread).max(1);
    // Each sync round is a lock/add/unlock triple (3 sync ops), interleaved
    // on a fixed per-thread schedule: one round per chunk of `sync_period`
    // allocations.  The schedule is a pure function of the spec, so every
    // variant reaches its replication points at the same call positions.
    let sync_rounds = (sync_ops / threads as u64 / 3).clamp(1, alloc_calls_per_thread);
    let sync_period = (alloc_calls_per_thread / sync_rounds).max(1);
    let chunks = alloc_calls_per_thread / sync_period;

    for t in 0..threads {
        let alloc = || {
            if t == 0 {
                Action::Syscall(SyscallSpec::BrkGrow { grow: 4096 })
            } else {
                Action::Syscall(SyscallSpec::MmapAnon { len: 16 * 1024 })
            }
        };
        let mut actions = vec![Action::Repeat {
            times: chunks,
            body: vec![
                Action::Repeat {
                    times: sync_period,
                    body: vec![alloc(), Action::Compute(compute_per_call)],
                },
                Action::LockAcquire(0),
                Action::AtomicAdd {
                    counter: 0,
                    amount: 1,
                },
                Action::LockRelease(0),
            ],
        }];
        // Rounding remainder, so the allocation count tracks the spec.
        let remainder = alloc_calls_per_thread - chunks * sync_period;
        if remainder > 0 {
            actions.push(Action::Repeat {
                times: remainder,
                body: vec![alloc(), Action::Compute(compute_per_call)],
            });
        }
        actions.push(Action::BarrierWait {
            barrier: 0,
            participants: threads as u32,
        });
        actions.push(Action::Syscall(SyscallSpec::WriteOutput {
            len: 32,
            tag: t as u64,
        }));
        p.add_thread(ThreadSpec::new(actions));
    }
    p
}

/// Lock-heavy topology: every thread loops over a tiny set of *shared*
/// locks (far fewer locks than threads) with a single atomic add and almost
/// no compute inside each critical section.  Thread `t` starts on lock
/// `t % locks` and walks the set round-robin, so every lock is contended by
/// every thread and the recorded order genuinely interleaves threads.
/// A few `gettimeofday` calls give the monitor a heartbeat without turning
/// the run I/O-bound, and a final barrier + write gives it a verifiable
/// tail.
fn lock_heavy_program(
    name: &str,
    threads: usize,
    compute: u64,
    sync_ops: u64,
    syscalls: u64,
) -> Program {
    let threads = threads.max(2);
    // Deliberately fewer locks than threads: contention is the point.
    let locks = ((threads / 2).max(2)) as u32;
    let mut p = Program::new(name).with_resources(locks, 1, 0, threads as u32);
    // Each iteration is lock + add + unlock = 3 sync ops.
    let iterations = (sync_ops / threads as u64 / 3).clamp(8, 120_000);
    // The spec's syscall rate is a trickle next to its sync-op rate; a
    // small fixed heartbeat before the barrier keeps the run sync-op
    // dominated at every scale.
    let heartbeats = (syscalls / threads as u64).clamp(1, 4);
    let walk_len = u64::from(locks).min(4);
    // One Compute action per `walk_len`-iteration Repeat body, so the
    // per-body amount is scaled by the body count, not the iteration count.
    let bodies = (iterations / walk_len).max(1);
    let compute_per_iter = (compute / threads as u64 / bodies).max(1);

    for t in 0..threads {
        let mut body = vec![Action::Compute(compute_per_iter)];
        // Walk the shared lock set round-robin, offset per thread so
        // acquisitions interleave instead of convoying behind lock 0.
        for step in 0..walk_len {
            let lock = (t as u64 + step) % u64::from(locks);
            body.push(Action::LockAcquire(lock as u32));
            body.push(Action::AtomicAdd {
                counter: t as u32,
                amount: 1,
            });
            body.push(Action::LockRelease(lock as u32));
        }
        p.add_thread(ThreadSpec::new(vec![
            Action::Repeat {
                times: bodies,
                body,
            },
            Action::Repeat {
                times: heartbeats,
                body: vec![Action::Syscall(SyscallSpec::Gettimeofday)],
            },
            Action::BarrierWait {
                barrier: 0,
                participants: threads as u32,
            },
            Action::Syscall(SyscallSpec::WriteOutput {
                len: 32,
                tag: t as u64,
            }),
        ]));
    }
    p
}

fn worker_loop(counter: u32, tasks: u64, compute_per_task: u64, print_period: u64) -> Action {
    Action::Repeat {
        times: tasks.max(1),
        body: vec![
            Action::QueuePop {
                queue: 0,
                print: false,
            },
            Action::Compute(compute_per_task),
            Action::AtomicAdd { counter, amount: 1 },
            Action::Repeat {
                times: u64::from(print_period == 1),
                body: vec![Action::Syscall(SyscallSpec::Gettimeofday)],
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvee_sync_agent::agents::AgentKind;
    use mvee_variant::runner::{run_mvee, run_native, RunConfig};

    #[test]
    fn catalog_matches_the_papers_benchmark_list() {
        assert_eq!(CATALOG.len(), 25, "12 PARSEC + 13 SPLASH-2x benchmarks");
        assert_eq!(
            CATALOG.iter().filter(|b| b.suite == Suite::Parsec).count(),
            12
        );
        assert_eq!(
            CATALOG
                .iter()
                .filter(|b| b.suite == Suite::Splash2x)
                .count(),
            13
        );
        // canneal and cholesky are excluded, as in the paper.
        assert!(BenchmarkSpec::by_name("canneal").is_none());
        assert!(BenchmarkSpec::by_name("cholesky").is_none());
        // Spot-check a Table 2 row: dedup.
        let dedup = BenchmarkSpec::by_name("dedup").unwrap();
        assert_eq!(dedup.native_runtime_s, 18.29);
        assert!(dedup.syscalls_per_s > 100_000.0);
        assert!(dedup.sync_ops_per_s > 1_000_000.0);
    }

    #[test]
    fn every_spec_expands_into_a_program_with_four_worker_threads() {
        for spec in CATALOG {
            let program = spec.paper_program(2e-5);
            assert!(
                program.thread_count() >= 2,
                "{} must be multithreaded",
                spec.name
            );
            assert!(
                program.thread_count() <= PAPER_WORKER_THREADS + 1,
                "{} has too many threads",
                spec.name
            );
            assert!(program.estimated_sync_ops() > 0 || spec.sync_ops_per_s < 1000.0);
        }
    }

    #[test]
    fn scale_controls_the_amount_of_work() {
        let spec = BenchmarkSpec::by_name("barnes").unwrap();
        let small = spec.paper_program(1e-5);
        let large = spec.paper_program(1e-4);
        assert!(large.estimated_sync_ops() > small.estimated_sync_ops());
    }

    #[test]
    fn high_sync_rate_benchmarks_generate_more_sync_ops() {
        let radiosity = BenchmarkSpec::by_name("radiosity")
            .unwrap()
            .paper_program(1e-5);
        let fft = BenchmarkSpec::by_name("fft").unwrap().paper_program(1e-5);
        assert!(radiosity.estimated_sync_ops() > 10 * fft.estimated_sync_ops().max(1));
    }

    #[test]
    fn data_parallel_program_runs_natively() {
        let spec = BenchmarkSpec::by_name("streamcluster").unwrap();
        let report = run_native(&spec.paper_program(1e-5));
        assert!(!report.threads.killed);
        assert!(report.threads.sync_ops > 0);
    }

    #[test]
    fn pipeline_program_completes_under_the_mvee() {
        let spec = BenchmarkSpec::by_name("dedup").unwrap();
        let program = spec.paper_program(4e-6);
        let report = run_mvee(&program, &RunConfig::new(2, AgentKind::WallOfClocks));
        assert!(
            report.completed_cleanly(),
            "divergence: {:?}",
            report.divergence
        );
    }

    #[test]
    fn task_queue_program_completes_under_the_mvee() {
        let spec = BenchmarkSpec::by_name("radiosity").unwrap();
        let program = spec.paper_program(2e-6);
        let report = run_mvee(&program, &RunConfig::new(2, AgentKind::WallOfClocks));
        assert!(
            report.completed_cleanly(),
            "divergence: {:?}",
            report.divergence
        );
        assert!(report.agent_stats.ops_recorded > 100);
    }

    #[test]
    fn suite_labels() {
        assert_eq!(Suite::Parsec.label(), "PARSEC 2.1");
        assert_eq!(Suite::Splash2x.label(), "SPLASH-2x");
        assert_eq!(Suite::Synthetic.label(), "synthetic");
    }

    #[test]
    fn churn_catalog_stays_out_of_the_paper_catalog() {
        assert_eq!(CHURN_CATALOG.len(), 2);
        assert!(CATALOG.iter().all(|b| b.suite != Suite::Synthetic));
        assert_eq!(sweep_catalog().count(), CATALOG.len() + CHURN_CATALOG.len());
        // by_name finds both worlds.
        assert!(BenchmarkSpec::by_name("memchurn").is_some());
        assert!(BenchmarkSpec::by_name("dedup").is_some());
    }

    #[test]
    fn churn_programs_expand_and_run_natively() {
        for spec in CHURN_CATALOG {
            let program = spec.paper_program(2e-6);
            assert!(program.thread_count() >= 2, "{}", spec.name);
            let report = run_native(&program);
            assert!(!report.threads.killed, "{}", spec.name);
            assert!(
                report.threads.syscalls > 20,
                "{} must be syscall-dense",
                spec.name
            );
        }
    }

    #[test]
    fn lockheavy_is_contended_and_sync_dominated() {
        let spec = BenchmarkSpec::by_name("lockheavy").unwrap();
        assert_eq!(spec.topology, Topology::LockHeavy);
        // Stays out of the paper-shaped sweep.
        assert!(sweep_catalog().all(|b| b.name != "lockheavy"));
        let program = spec.program(4, 1e-5);
        assert!(program.thread_count() >= 2);
        let report = run_native(&program);
        assert!(!report.threads.killed);
        assert!(
            report.threads.sync_ops > 10 * report.threads.syscalls.max(1),
            "lockheavy must be sync-op-dominated: {} sync ops vs {} syscalls",
            report.threads.sync_ops,
            report.threads.syscalls
        );
    }

    #[test]
    fn lockheavy_completes_under_every_replication_agent() {
        let spec = BenchmarkSpec::by_name("lockheavy").unwrap();
        let program = spec.program(4, 2e-7);
        for kind in AgentKind::replication_agents() {
            let report = run_mvee(&program, &RunConfig::new(2, kind));
            assert!(
                report.completed_cleanly(),
                "{kind:?} diverged: {:?}",
                report.divergence
            );
            assert!(report.agent_stats.ops_recorded > 0, "{kind:?}");
        }
    }

    #[test]
    fn allocator_churn_defers_comparisons_under_a_batched_monitor() {
        let spec = BenchmarkSpec::by_name("memchurn").unwrap();
        let program = spec.paper_program(1e-6);
        let unbatched = run_mvee(&program, &RunConfig::new(2, AgentKind::WallOfClocks));
        assert!(
            unbatched.completed_cleanly(),
            "unbatched diverged: {:?}",
            unbatched.divergence
        );
        assert_eq!(unbatched.monitor.batched_comparisons, 0);
        let batched = run_mvee(
            &program,
            &RunConfig::new(2, AgentKind::WallOfClocks).with_batch(8),
        );
        assert!(
            batched.completed_cleanly(),
            "batched diverged: {:?}",
            batched.divergence
        );
        assert!(
            batched.monitor.batched_comparisons > 0,
            "an allocator-churn workload must exercise the deferred path"
        );
        assert!(batched.monitor.batch_flushes > 0);
    }
}
