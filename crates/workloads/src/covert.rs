//! The covert-channel proofs of concept from the security analysis (§5.4).
//!
//! The paper shows that *replication itself* creates covert channels between
//! colluding variants:
//!
//! 1. **Timing channel** — the results of `gettimeofday` (and `rdtsc`) are
//!    replicated from the master to the slaves.  If the master inserts a
//!    data-dependent delay between two time queries, the slave can recover
//!    the data from the replicated delta, even though the slave itself never
//!    experienced the delay.
//! 2. **Trylock channel** — the replication of synchronization operations
//!    reproduces, in the slave, whether a `pthread_mutex_trylock` succeeded
//!    in the master.  By holding a mutex across a data-dependent window, the
//!    master's thread pair can therefore signal one bit per round to the
//!    slave.
//!
//! Combined with the self-awareness call (each variant can learn whether it
//! is the master), colluding variants can exchange their (diversified)
//! pointer values and then exfiltrate both without ever producing divergent
//! system calls — the point the paper stresses is a limitation of MVEEs in
//! general, not of its agents.

use std::sync::Arc;

use mvee_core::mvee::Mvee;
use mvee_core::policy::MonitoringPolicy;
use mvee_kernel::syscall::{SyscallRequest, Sysno};
use mvee_sync_agent::agents::AgentKind;
use mvee_sync_agent::context::{SyncContext, VariantRole};

/// Result of a covert-channel experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CovertChannelReport {
    /// The bits the sender (master variant) encoded.
    pub sent: Vec<bool>,
    /// The bits the receiver (slave variant) decoded.
    pub received: Vec<bool>,
    /// Whether the monitor flagged any divergence (it must not: the whole
    /// point is that the channel is invisible to the monitor).
    pub diverged: bool,
}

impl CovertChannelReport {
    /// Whether every bit crossed the channel intact.
    pub fn transfer_is_exact(&self) -> bool {
        self.sent == self.received
    }

    /// Channel accuracy in [0, 1].
    pub fn accuracy(&self) -> f64 {
        if self.sent.is_empty() {
            return 1.0;
        }
        let correct = self
            .sent
            .iter()
            .zip(&self.received)
            .filter(|(a, b)| a == b)
            .count();
        correct as f64 / self.sent.len() as f64
    }
}

/// The per-bit delay (in nanoseconds of virtual time) the sender inserts for
/// a `1` bit in the timing channel.
const TIMING_DELAY_NS: u64 = 1_000_000;
/// Decision threshold for the receiver.
const TIMING_THRESHOLD_NS: u64 = TIMING_DELAY_NS / 2;

/// Runs the `gettimeofday` timing covert channel and returns what the slave
/// variant decoded.
///
/// The master variant encodes each bit by performing (or skipping) a long,
/// data-dependent computation between two `gettimeofday` calls; the slave
/// variant issues the same two calls, receives the master's replicated
/// timestamps and decodes the bit from their difference.  The simulated
/// kernel's manual clock stands in for the wall-clock time the computation
/// would consume on real hardware.
pub fn run_timing_channel(bits: &[bool]) -> CovertChannelReport {
    let mvee = Mvee::builder()
        .variants(2)
        .threads(1)
        .policy(MonitoringPolicy::StrictLockstep)
        .agent(AgentKind::WallOfClocks)
        .manual_clock(true)
        .build();
    let kernel = Arc::clone(mvee.kernel());

    // Each colluding variant's single thread acquires its port once.
    let master = mvee.thread_port(0, 0);
    let slave = mvee.thread_port(1, 0);
    let bits_master = bits.to_vec();
    let bit_count = bits.len();

    // The master encodes.  Both variants run the same *program*; the
    // data-dependent delay is exactly the kind of behaviour the monitor
    // cannot see because it changes no system call arguments.
    let master_handle = std::thread::spawn(move || {
        let mut sent = Vec::new();
        for &bit in &bits_master {
            let _ = master.syscall(&SyscallRequest::new(Sysno::Gettimeofday));
            if bit {
                // Data-dependent computation; on real hardware this burns
                // wall-clock time, here it advances the virtual clock.
                kernel.clock().advance(TIMING_DELAY_NS);
            }
            kernel.clock().advance(1_000);
            let _ = master.syscall(&SyscallRequest::new(Sysno::Gettimeofday));
            sent.push(bit);
        }
        sent
    });

    // The slave decodes from the replicated timestamps.
    let slave_handle = std::thread::spawn(move || {
        let mut received = Vec::new();
        for _ in 0..bit_count {
            let first = slave
                .syscall(&SyscallRequest::new(Sysno::Gettimeofday))
                .map(|o| le_u64(&o.payload))
                .unwrap_or(0);
            let second = slave
                .syscall(&SyscallRequest::new(Sysno::Gettimeofday))
                .map(|o| le_u64(&o.payload))
                .unwrap_or(0);
            received.push(second.saturating_sub(first) > TIMING_THRESHOLD_NS);
        }
        received
    });

    let sent = master_handle.join().expect("master thread panicked");
    let received = slave_handle.join().expect("slave thread panicked");
    CovertChannelReport {
        sent,
        received,
        diverged: mvee.divergence().is_some(),
    }
}

/// Runs the trylock covert channel and returns what the slave decoded.
///
/// Each round, master thread A holds (or does not hold) a mutex across a
/// window in which master thread B attempts a trylock; the trylock result is
/// a sync op whose outcome the agent faithfully replays in the slave, so the
/// slave's thread B observes the same success/failure pattern — one bit per
/// round.
pub fn run_trylock_channel(bits: &[bool]) -> CovertChannelReport {
    let mvee = Mvee::builder()
        .variants(2)
        .threads(2)
        .policy(MonitoringPolicy::StrictLockstep)
        .agent(AgentKind::WallOfClocks)
        .manual_clock(true)
        .build();
    let agent = Arc::clone(mvee.agent());

    // One simulated mutex per variant, at diversified addresses.
    let master_mutex = Arc::new(std::sync::atomic::AtomicU32::new(0));
    let slave_mutex = Arc::new(std::sync::atomic::AtomicU32::new(0));
    // The channel mutex is ONE variable per variant (at diversified
    // addresses), used for every round — exactly like the single pthread
    // mutex of the paper's proof of concept.  All rounds' sync ops therefore
    // share one logical clock and replay in a single per-variable order.
    let addr_for = |variant: usize| 0x7fd0_0000_0000u64 + variant as u64 * 0x1000_0000;

    use std::sync::atomic::Ordering as AO;

    // --- master variant: encode every bit ---------------------------------
    //
    // Both master threads run the *same program* every round: thread A locks
    // and unlocks the mutex, thread B trylocks (and unlocks on success).  The
    // bit is encoded purely in the *timing* of A's unlock — whether it
    // happens before or after B's trylock — which we simulate by choosing the
    // order in which the ops are recorded.  The agent replicates exactly that
    // order, never the wall-clock timing, which is why the channel works.
    let master_a = SyncContext::new(VariantRole::Master, 0);
    let master_b = SyncContext::new(VariantRole::Master, 1);
    let mut sent = Vec::new();
    for &bit in bits {
        let addr = addr_for(0);
        let mutex = &master_mutex;
        // A: lock.
        agent.before_sync_op(&master_a, addr);
        mutex.store(1, AO::SeqCst);
        agent.after_sync_op(&master_a, addr);
        if !bit {
            // Short data-dependent delay: A releases *before* B's trylock.
            agent.before_sync_op(&master_a, addr);
            mutex.store(0, AO::SeqCst);
            agent.after_sync_op(&master_a, addr);
        }
        // B: trylock.
        agent.before_sync_op(&master_b, addr);
        let acquired = mutex.compare_exchange(0, 1, AO::SeqCst, AO::SeqCst).is_ok();
        agent.after_sync_op(&master_b, addr);
        if acquired {
            agent.before_sync_op(&master_b, addr);
            mutex.store(0, AO::SeqCst);
            agent.after_sync_op(&master_b, addr);
        }
        if bit {
            // Long data-dependent delay: A releases only after B's trylock.
            agent.before_sync_op(&master_a, addr);
            mutex.store(0, AO::SeqCst);
            agent.after_sync_op(&master_a, addr);
        }
        sent.push(bit);
    }

    // --- slave variant: two real threads run the fixed program -------------
    //
    // The slave knows nothing about the bits; its thread A experiences no
    // data-dependent delay at all.  The replayed per-mutex order nevertheless
    // forces its thread B's trylock to observe exactly the master's pattern.
    let rounds = bits.len();
    let agent_a = Arc::clone(&agent);
    let mutex_a = Arc::clone(&slave_mutex);
    let slave_a_handle = std::thread::spawn(move || {
        let ctx = SyncContext::new(VariantRole::Slave { index: 0 }, 0);
        for _round in 0..rounds {
            let addr = addr_for(1);
            // A: lock.
            agent_a.before_sync_op(&ctx, addr);
            mutex_a.store(1, AO::SeqCst);
            agent_a.after_sync_op(&ctx, addr);
            // A: unlock (no delay in the slave).
            agent_a.before_sync_op(&ctx, addr);
            mutex_a.store(0, AO::SeqCst);
            agent_a.after_sync_op(&ctx, addr);
        }
    });
    let agent_b = Arc::clone(&agent);
    let mutex_b = Arc::clone(&slave_mutex);
    let slave_b_handle = std::thread::spawn(move || {
        let ctx = SyncContext::new(VariantRole::Slave { index: 0 }, 1);
        let mut received = Vec::new();
        for _round in 0..rounds {
            let addr = addr_for(1);
            agent_b.before_sync_op(&ctx, addr);
            let acquired = mutex_b
                .compare_exchange(0, 1, AO::SeqCst, AO::SeqCst)
                .is_ok();
            agent_b.after_sync_op(&ctx, addr);
            if acquired {
                agent_b.before_sync_op(&ctx, addr);
                mutex_b.store(0, AO::SeqCst);
                agent_b.after_sync_op(&ctx, addr);
            }
            received.push(!acquired);
        }
        received
    });
    slave_a_handle.join().expect("slave thread A panicked");
    let received = slave_b_handle.join().expect("slave thread B panicked");

    CovertChannelReport {
        sent,
        received,
        diverged: mvee.divergence().is_some(),
    }
}

/// Exchanges each variant's "secret" pointer value with the other using the
/// timing channel in both roles, demonstrating the §5.4 conclusion: both
/// variants end up knowing both diversified pointer values without any
/// divergence being detected.
pub fn exchange_pointers(master_secret: u64, slave_secret: u64) -> (u64, u64, bool) {
    let to_bits = |v: u64| (0..16).map(|i| (v >> i) & 1 == 1).collect::<Vec<bool>>();
    let from_bits = |bits: &[bool]| {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    };
    // Master sends the low 16 bits of its secret to the slave through the
    // timing channel...
    let first = run_timing_channel(&to_bits(master_secret));
    // ...and the slave answers through a second round (roles in the covert
    // protocol are decided by hashing a pointer value, which the monitor
    // cannot see; we model the answer with the same primitive).
    let second = run_timing_channel(&to_bits(slave_secret));
    let slave_learned = from_bits(&first.received);
    let master_learned = from_bits(&second.received);
    (
        master_learned,
        slave_learned,
        first.diverged || second.diverged,
    )
}

fn le_u64(payload: &[u8]) -> u64 {
    let mut bytes = [0u8; 8];
    let n = payload.len().min(8);
    bytes[..n].copy_from_slice(&payload[..n]);
    u64::from_le_bytes(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_channel_transfers_bits_without_divergence() {
        let bits = vec![true, false, true, true, false, false, true, false];
        let report = run_timing_channel(&bits);
        assert!(
            report.transfer_is_exact(),
            "received: {:?}",
            report.received
        );
        assert!(!report.diverged, "the monitor must not notice the channel");
        assert_eq!(report.accuracy(), 1.0);
    }

    #[test]
    fn trylock_channel_transfers_bits_without_divergence() {
        let bits = vec![false, true, true, false, true, false, false, true];
        let report = run_trylock_channel(&bits);
        assert!(
            report.transfer_is_exact(),
            "received: {:?}",
            report.received
        );
        assert!(!report.diverged);
    }

    #[test]
    fn pointer_exchange_leaks_both_secrets() {
        let (master_learned, slave_learned, diverged) = exchange_pointers(0xbeef, 0x1234);
        assert_eq!(slave_learned, 0xbeef);
        assert_eq!(master_learned, 0x1234);
        assert!(!diverged);
    }

    #[test]
    fn empty_transfer_is_trivially_exact() {
        let report = run_timing_channel(&[]);
        assert!(report.transfer_is_exact());
        assert_eq!(report.accuracy(), 1.0);
    }
}
