//! Synthetic workloads reproducing the paper's evaluation targets.
//!
//! The paper evaluates its synchronization agents on PARSEC 2.1 and
//! SPLASH-2x (Table 2, Figure 5, Table 1), on an nginx-1.8 thread-pool server
//! (§5.5) and on two covert-channel proof-of-concept programs (§5.4).  The
//! real benchmark suites and nginx are not available in this environment, so
//! this crate generates *synthetic equivalents* parameterized by the numbers
//! the paper itself reports:
//!
//! * [`catalog`] — one entry per PARSEC/SPLASH benchmark with the native run
//!   time, system-call rate and sync-op rate from Table 2 plus a thread
//!   topology (data-parallel, pipeline, task-queue); each entry expands into
//!   a [`Program`](mvee_variant::program::Program) whose rates match a scaled
//!   version of the original.
//! * [`nginx`] — a thread-pooled web server with both pthread-style and
//!   custom (inline-assembly-style) synchronization primitives, a load
//!   generator, and the CVE-2013-2028-style attack payload.
//! * [`covert`] — the timing and trylock covert channels of §5.4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod covert;
pub mod nginx;

pub use catalog::{BenchmarkSpec, Suite, Topology, CATALOG};
