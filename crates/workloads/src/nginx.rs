//! The nginx use case (§5.5): a thread-pooled web server under the MVEE.
//!
//! The paper instruments nginx 1.8 (which had just gained thread pools),
//! runs two diversified variants of it under ReMon, drives it with `wrk`
//! over a gigabit network and over loopback, and finally attacks it with a
//! CVE-2013-2028-style exploit tailored to one concrete variant.  The
//! headline numbers: 3 % throughput loss over the network, 48 % over
//! loopback, and the attack is detected as divergence before the system is
//! compromised.
//!
//! This module reproduces the whole pipeline against the simulated kernel:
//!
//! * [`NginxServerConfig`] describes the server (pool size, page size,
//!   whether the custom sync primitives are instrumented) and embeds the
//!   shared [`MveeConfig`] tuning block (agent, shards, batch, placement).
//! * [`run_nginx_experiment`] runs the server inside an
//!   [`Mvee`](mvee_core::mvee::Mvee) (or natively) while a load generator
//!   modelled on `wrk` issues requests from outside the MVEE, and reports
//!   throughput plus any detected divergence.
//! * [`AttackOutcome`] / the `attack_request` flag reproduce the tailored
//!   code-reuse attack: the payload carries a concrete gadget address; only
//!   the variant whose (diversified) code layout matches executes the
//!   malicious `mprotect`, so with ≥2 variants the monitor sees divergence.
//!
//! Every server thread — the listener and each pool worker — acquires its
//! [`ThreadPort`] once at start-up and issues all of its monitored calls and
//! sync-op brackets through it, the thread-port gateway discipline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mvee_core::config::MveeConfig;
use mvee_core::monitor::MonitorError;
use mvee_core::mvee::{Mvee, VariantGateway};
use mvee_core::port::ThreadPort;
use mvee_kernel::net::LinkKind;
use mvee_kernel::syscall::{SyscallArg, SyscallOutcome, SyscallRequest, Sysno};
use mvee_kernel::vfs::OpenFlags;
use mvee_sync_agent::context::AgentConfig;
use mvee_variant::diversity::DiversityProfile;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct NginxServerConfig {
    /// Number of variants (1 = no MVEE protection, just the plain server).
    pub variants: usize,
    /// Worker threads in the pool (the paper uses 32).
    pub pool_threads: usize,
    /// Size of the static page served (the paper uses 4 KiB).
    pub page_bytes: usize,
    /// Total requests the load generator issues.
    pub requests: usize,
    /// Whether nginx's *custom* synchronization primitives are instrumented.
    /// Leaving them uninstrumented reproduces the paper's observation that
    /// the server "quickly triggers a divergence when network traffic starts
    /// flowing in".
    pub instrument_custom_sync: bool,
    /// The link the clients connect over.
    pub link: LinkKind,
    /// Diversity applied to the variants (ASLR + DCL in the paper).
    pub diversity: DiversityProfile,
    /// The shared MVEE tuning knobs (agent, shards, batch, placement,
    /// timeout), forwarded verbatim to the builder.
    pub mvee: MveeConfig,
}

impl Default for NginxServerConfig {
    fn default() -> Self {
        NginxServerConfig {
            variants: 2,
            pool_threads: 8,
            page_bytes: 4096,
            requests: 64,
            instrument_custom_sync: true,
            link: LinkKind::Loopback,
            diversity: DiversityProfile::full(2028),
            mvee: MveeConfig::default().with_agent_config(
                AgentConfig::default()
                    .with_buffer_capacity(1 << 15)
                    .with_clock_count(1024),
            ),
        }
    }
}

impl NginxServerConfig {
    /// The many-thread, many-variant stress configuration: `variants`
    /// diversified servers with `pool_threads` workers each, all hammering
    /// the sharded monitor at once.  Scaled-down page and request counts keep
    /// a 16-variant run inside a CI time budget while still exercising every
    /// rendezvous shard.
    pub fn stress(variants: usize, pool_threads: usize, requests: usize) -> Self {
        let base = NginxServerConfig::default();
        NginxServerConfig {
            variants,
            pool_threads,
            requests,
            page_bytes: 1024,
            mvee: base.mvee.with_lockstep_timeout(Duration::from_secs(15)),
            ..base
        }
    }
}

/// What happened to an attack request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackOutcome {
    /// No attack was issued.
    NotAttempted,
    /// The attack compromised the server (a writable+executable mapping was
    /// created) without being detected — the single-variant outcome.
    Compromised,
    /// The MVEE detected divergence and shut the variants down before the
    /// malicious system call took effect.
    DetectedAndStopped,
    /// The attack failed outright (no variant's layout matched the payload).
    Failed,
}

/// Result of one nginx experiment.
#[derive(Debug, Clone)]
pub struct NginxReport {
    /// Requests completed successfully by the load generator.
    pub completed_requests: usize,
    /// Wall-clock duration of the load phase.
    pub duration: Duration,
    /// Whether the monitor detected divergence.
    pub diverged: bool,
    /// Outcome of the attack phase (if any).
    pub attack: AttackOutcome,
    /// Requests per second (excluding the modelled link latency).
    pub throughput_rps: f64,
    /// Requests per second including the modelled link transfer time, which
    /// is what an external client would observe.
    pub effective_throughput_rps: f64,
}

/// The port the simulated nginx listens on.
const NGINX_PORT: u16 = 8080;
/// Path of the static page.
const PAGE_PATH: &str = "/www/index.html";

/// Runs the nginx experiment: server under the MVEE, load generator outside.
pub fn run_nginx_experiment(config: &NginxServerConfig, attack: bool) -> NginxReport {
    let layouts = (0..config.variants)
        .map(|v| config.diversity.layout_for(v))
        .collect();
    let mvee = Mvee::builder()
        .variants(config.variants)
        .threads(config.pool_threads + 1)
        .config(config.mvee.clone())
        .layouts(layouts)
        .build();
    mvee.kernel()
        .install_file(PAGE_PATH, &vec![b'x'; config.page_bytes]);

    // How many connections each variant's server must accept and process
    // before it exits.  The exit condition must depend only on replicated
    // data (accepted connections and pops of the work queue), never on
    // wall-clock time, or the variants' control flow would diverge.
    let expected_connections = config.requests + usize::from(attack);

    // Spawn the server threads of every variant.
    let mut server_handles = Vec::new();
    for v in 0..config.variants {
        let gateway = mvee.gateway(v);
        let cfg = config.clone();
        let code_base = config.diversity.code_base_for(v);
        server_handles.push(std::thread::spawn(move || {
            run_server_variant(gateway, &cfg, code_base, expected_connections)
        }));
    }

    // The load generator runs outside the MVEE, as a separate kernel process.
    let client_pid = mvee.kernel().spawn_process();
    let kernel = Arc::clone(mvee.kernel());
    let requests = config.requests;
    let link = config.link;
    let attack_flag = attack;
    let diversity = config.diversity;
    let variants = config.variants;
    let start = Instant::now();
    let client_handle = std::thread::spawn(move || {
        run_load_generator(
            &kernel,
            client_pid,
            requests,
            link,
            attack_flag,
            &diversity,
            variants,
        )
    });
    let completed = client_handle.join().expect("load generator panicked");
    let duration = start.elapsed();

    // The servers exit on their own once they have processed every expected
    // connection (or once the monitor shuts the MVEE down after divergence).
    for h in server_handles {
        let _ = h.join();
    }

    let diverged = mvee.divergence().is_some();
    let attack_outcome = if !attack {
        AttackOutcome::NotAttempted
    } else if diverged {
        AttackOutcome::DetectedAndStopped
    } else if (0..config.variants).any(|v| mvee.kernel().process_has_wx_mapping(mvee.pid_of(v))) {
        AttackOutcome::Compromised
    } else {
        AttackOutcome::Failed
    };

    let secs = duration.as_secs_f64().max(1e-9);
    let link_cost_s = config.requests as f64
        * 2.0
        * config.link.transfer_time_ns(config.page_bytes) as f64
        * 1e-9;
    NginxReport {
        completed_requests: completed,
        duration,
        diverged,
        attack: attack_outcome,
        throughput_rps: completed as f64 / secs,
        effective_throughput_rps: completed as f64 / (secs + link_cost_s),
    }
}

/// One variant's server: a listener loop plus a worker pool.
///
/// The listener accepts connections and pushes the connection FD into a
/// work queue protected by nginx's *custom* spinlock (instrumented or not,
/// per the configuration); pool threads pop FDs, read the request, update
/// shared statistics under a pthread-style lock, and send the page.  Each
/// thread acquires its [`ThreadPort`] once and drives everything through it.
fn run_server_variant(
    gateway: VariantGateway,
    config: &NginxServerConfig,
    code_base: u64,
    expected_connections: usize,
) -> Result<(), MonitorError> {
    // The listener runs on logical thread 0 of this OS thread; its port also
    // performs the one-time server set-up calls.
    let listener_port = gateway.thread(0);
    let state = Arc::new(ServerState::new(&listener_port)?);

    let mut handles = Vec::new();
    for worker in 1..=config.pool_threads {
        let state = Arc::clone(&state);
        let gateway = gateway.clone();
        let cfg = config.clone();
        handles.push(std::thread::spawn(move || {
            let port = gateway.thread(worker);
            worker_loop(&port, &state, &cfg, code_base, expected_connections)
        }));
    }

    // Listener loop on thread 0.
    let result = listener_loop(&listener_port, &state, config, expected_connections);
    for h in handles {
        let _ = h.join();
    }
    result
}

/// Per-variant server state shared by its threads.
struct ServerState {
    /// Listening socket FD.
    listen_fd: i32,
    /// FD of the static page (opened once, like nginx's open-file cache).
    page_fd: i32,
    /// Work queue of accepted connection FDs.
    queue: parking_lot::Mutex<std::collections::VecDeque<i32>>,
    /// Address of nginx's custom spinlock guarding the queue.
    custom_lock_addr: u64,
    /// The custom spinlock word itself.
    custom_lock: AtomicU64,
    /// Address of the pthread-style statistics lock.
    stats_lock_addr: u64,
    /// The statistics lock word.
    stats_lock: AtomicU64,
    /// Bytes served (protected by the stats lock).
    bytes_served: AtomicU64,
    /// Connections popped from the work queue so far.  Only mutated and read
    /// while holding the custom queue lock, so its value is governed by the
    /// replayed lock order and stays consistent across variants.
    processed: AtomicU64,
}

impl ServerState {
    fn new(port: &ThreadPort) -> Result<Self, MonitorError> {
        // socket / bind / listen / open the page.
        let sock = port.syscall(&SyscallRequest::new(Sysno::Socket))?;
        let listen_fd = sock.result.unwrap_or(-1) as i32;
        port.syscall(
            &SyscallRequest::new(Sysno::Bind)
                .with_fd(listen_fd)
                .with_int(i64::from(NGINX_PORT)),
        )?;
        port.syscall(&SyscallRequest::new(Sysno::Listen).with_fd(listen_fd))?;
        let page = port.syscall(
            &SyscallRequest::new(Sysno::Open)
                .with_path(PAGE_PATH)
                .with_arg(SyscallArg::Flags(OpenFlags::READ.bits())),
        )?;
        let page_fd = page.result.unwrap_or(-1) as i32;
        let base = 0x7f80_0000_0000u64 + (port.variant_index() as u64) * 0x100_0000;
        Ok(ServerState {
            listen_fd,
            page_fd,
            queue: parking_lot::Mutex::new(std::collections::VecDeque::new()),
            custom_lock_addr: base,
            custom_lock: AtomicU64::new(0),
            stats_lock_addr: base + 0x40,
            stats_lock: AtomicU64::new(0),
            bytes_served: AtomicU64::new(0),
            processed: AtomicU64::new(0),
        })
    }

    /// Acquires nginx's custom spinlock.  Each CAS attempt is a sync op, but
    /// only instrumented when `instrument` is true (the §5.5 experiment).
    fn custom_lock_acquire(&self, port: &ThreadPort, instrument: bool) {
        loop {
            if instrument {
                port.before_sync_op(self.custom_lock_addr);
            }
            let acquired = self
                .custom_lock
                .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok();
            if instrument {
                port.after_sync_op(self.custom_lock_addr);
            }
            if acquired {
                return;
            }
            std::thread::yield_now();
        }
    }

    fn custom_lock_release(&self, port: &ThreadPort, instrument: bool) {
        if instrument {
            port.before_sync_op(self.custom_lock_addr);
        }
        self.custom_lock.store(0, Ordering::Release);
        if instrument {
            port.after_sync_op(self.custom_lock_addr);
        }
    }

    /// The pthread-style statistics lock is always instrumented (the paper
    /// had already covered pthread primitives before tackling nginx).
    fn stats_lock_acquire(&self, port: &ThreadPort) {
        loop {
            port.before_sync_op(self.stats_lock_addr);
            let acquired = self
                .stats_lock
                .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok();
            port.after_sync_op(self.stats_lock_addr);
            if acquired {
                return;
            }
            std::thread::yield_now();
        }
    }

    fn stats_lock_release(&self, port: &ThreadPort) {
        port.before_sync_op(self.stats_lock_addr);
        self.stats_lock.store(0, Ordering::Release);
        port.after_sync_op(self.stats_lock_addr);
    }
}

fn listener_loop(
    port: &ThreadPort,
    state: &Arc<ServerState>,
    config: &NginxServerConfig,
    expected_connections: usize,
) -> Result<(), MonitorError> {
    let mut accepted = 0usize;
    while accepted < expected_connections {
        if port.is_shut_down() {
            return Err(MonitorError::ShutDown);
        }
        let accept = port.syscall(&SyscallRequest::new(Sysno::Accept).with_fd(state.listen_fd))?;
        match accept.result {
            Ok(conn_fd) => {
                accepted += 1;
                state.custom_lock_acquire(port, config.instrument_custom_sync);
                state.queue.lock().push_back(conn_fd as i32);
                state.custom_lock_release(port, config.instrument_custom_sync);
            }
            Err(_) => {
                // Backlog empty.  The retry count is consistent across
                // variants because each retry's (replicated) EAGAIN result is
                // what drives this branch.  The short sleep mirrors nginx's
                // event-loop wait and keeps the recorded call stream small.
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }
    Ok(())
}

fn worker_loop(
    port: &ThreadPort,
    state: &Arc<ServerState>,
    config: &NginxServerConfig,
    code_base: u64,
    expected_connections: usize,
) -> Result<(), MonitorError> {
    loop {
        if port.is_shut_down() {
            return Err(MonitorError::ShutDown);
        }
        state.custom_lock_acquire(port, config.instrument_custom_sync);
        let conn = state.queue.lock().pop_front();
        if conn.is_some() {
            state.processed.fetch_add(1, Ordering::Relaxed);
        }
        let processed = state.processed.load(Ordering::Relaxed);
        state.custom_lock_release(port, config.instrument_custom_sync);
        let conn_fd = match conn {
            Some(fd) => fd,
            None => {
                if processed >= expected_connections as u64 {
                    return Ok(());
                }
                // Idle back-off, mirroring the condition-variable wait of a
                // real thread pool; keeps the master's recorded op stream (and
                // therefore the slaves' replay work) small while idle.
                std::thread::sleep(Duration::from_micros(200));
                continue;
            }
        };
        handle_request(port, state, config, code_base, conn_fd)?;
    }
}

fn handle_request(
    port: &ThreadPort,
    state: &Arc<ServerState>,
    config: &NginxServerConfig,
    code_base: u64,
    conn_fd: i32,
) -> Result<(), MonitorError> {
    // Read the request (replicated from the master).
    let request = loop {
        let recv = port.syscall(
            &SyscallRequest::new(Sysno::Recv)
                .with_fd(conn_fd)
                .with_int(1024),
        )?;
        match recv.result {
            Ok(n) if n > 0 => break recv.payload,
            Ok(_) => break Vec::new(),
            Err(_) => {
                std::thread::yield_now();
                continue;
            }
        }
    };

    let text = String::from_utf8_lossy(&request);
    if let Some(gadget) = parse_attack_gadget(&text) {
        // CVE-2013-2028 model: the oversized chunked body overflows a stack
        // buffer and pivots to the gadget address embedded in the payload.
        // Only the variant whose diversified code layout contains that
        // address ends up executing the malicious mprotect; the others hit
        // an invalid address and issue their normal error response.
        if gadget >= code_base && gadget < code_base + (64 << 20) {
            let mmap = port.syscall(
                &SyscallRequest::new(Sysno::Mmap)
                    .with_int(4096)
                    .with_arg(SyscallArg::Flags(3)),
            )?;
            let addr = mmap.result.unwrap_or(0).max(0) as u64;
            port.syscall(
                &SyscallRequest::new(Sysno::Mprotect)
                    .with_arg(SyscallArg::Pointer(addr))
                    .with_int(4096)
                    .with_arg(SyscallArg::Flags(7)),
            )?;
            // If we are still alive the exploit proceeds to exfiltrate.
            port.syscall(
                &SyscallRequest::new(Sysno::Send)
                    .with_fd(conn_fd)
                    .with_payload(b"pwned"),
            )?;
        } else {
            port.syscall(
                &SyscallRequest::new(Sysno::Send)
                    .with_fd(conn_fd)
                    .with_payload(b"HTTP/1.1 400 Bad Request\r\n\r\n"),
            )?;
        }
        let _ = port.syscall(&SyscallRequest::new(Sysno::Close).with_fd(conn_fd));
        return Ok(());
    }

    // Normal request: update statistics under the pthread-style lock, then
    // send the header and the page body.
    state.stats_lock_acquire(port);
    state
        .bytes_served
        .fetch_add(config.page_bytes as u64, Ordering::Relaxed);
    state.stats_lock_release(port);

    let header = format!(
        "HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n",
        config.page_bytes
    );
    port.syscall(
        &SyscallRequest::new(Sysno::Send)
            .with_fd(conn_fd)
            .with_payload(header.as_bytes()),
    )?;
    port.syscall(
        &SyscallRequest::new(Sysno::Sendfile)
            .with_fd(conn_fd)
            .with_fd(state.page_fd)
            .with_int(config.page_bytes as i64),
    )?;
    // Rewind the shared page FD for the next request.
    port.syscall(
        &SyscallRequest::new(Sysno::Lseek)
            .with_fd(state.page_fd)
            .with_int(0),
    )?;
    port.syscall(&SyscallRequest::new(Sysno::Close).with_fd(conn_fd))?;
    Ok(())
}

fn parse_attack_gadget(request: &str) -> Option<u64> {
    let marker = "X-Gadget: 0x";
    let idx = request.find(marker)?;
    let hex: String = request[idx + marker.len()..]
        .chars()
        .take_while(|c| c.is_ascii_hexdigit())
        .collect();
    u64::from_str_radix(&hex, 16).ok()
}

/// The wrk-style load generator: issues `requests` GET requests (plus one
/// attack request at the end when `attack` is set) and counts completions.
fn run_load_generator(
    kernel: &Arc<mvee_kernel::kernel::Kernel>,
    pid: u64,
    requests: usize,
    link: LinkKind,
    attack: bool,
    diversity: &DiversityProfile,
    variants: usize,
) -> usize {
    let mut completed = 0;
    for i in 0..requests {
        if send_one_request(kernel, pid, link, b"GET /index.html HTTP/1.1\r\n\r\n").is_some() {
            completed += 1;
        }
        if i % 16 == 0 {
            std::thread::yield_now();
        }
    }
    if attack {
        // Tailor the exploit to the *last* variant's code layout, exactly as
        // the paper's attack script tailors its payload to one running
        // victim.
        let target = diversity.code_base_for(variants.saturating_sub(1)) + 0x1234;
        let payload = format!(
            "GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\nX-Gadget: 0x{:x}\r\n\r\n{}",
            target,
            "A".repeat(2048)
        );
        let _ = send_one_request(kernel, pid, link, payload.as_bytes());
    }
    completed
}

fn send_one_request(
    kernel: &Arc<mvee_kernel::kernel::Kernel>,
    pid: u64,
    link: LinkKind,
    payload: &[u8],
) -> Option<SyscallOutcome> {
    let link_flag = u64::from(link == LinkKind::GigabitNetwork);
    // Connect, retrying while the server is still binding its listener (the
    // server races with the client at startup, exactly like wrk started a
    // moment before nginx finishes initializing).
    let fd = {
        let mut attempt = 0u32;
        loop {
            let sock = kernel.execute(pid, 0, &SyscallRequest::new(Sysno::Socket));
            let fd = sock.result.ok()? as i32;
            let connect = kernel.execute(
                pid,
                0,
                &SyscallRequest::new(Sysno::Connect)
                    .with_fd(fd)
                    .with_int(i64::from(NGINX_PORT))
                    .with_arg(SyscallArg::Flags(link_flag)),
            );
            if connect.result.is_ok() {
                break fd;
            }
            let _ = kernel.execute(pid, 0, &SyscallRequest::new(Sysno::Close).with_fd(fd));
            attempt += 1;
            if attempt > 20_000 {
                return None;
            }
            std::thread::sleep(std::time::Duration::from_micros(500));
        }
    };
    kernel
        .execute(
            pid,
            0,
            &SyscallRequest::new(Sysno::Send)
                .with_fd(fd)
                .with_payload(payload),
        )
        .result
        .ok()?;
    // Wait for the response with a bounded number of polls.
    for _ in 0..100_000 {
        let recv = kernel.execute(
            pid,
            0,
            &SyscallRequest::new(Sysno::Recv)
                .with_fd(fd)
                .with_int(64 * 1024),
        );
        match recv.result {
            Ok(n) if n > 0 => {
                let _ = kernel.execute(pid, 0, &SyscallRequest::new(Sysno::Close).with_fd(fd));
                return Some(recv);
            }
            Ok(_) | Err(_) => std::thread::sleep(std::time::Duration::from_micros(100)),
        }
    }
    let _ = kernel.execute(pid, 0, &SyscallRequest::new(Sysno::Close).with_fd(fd));
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(variants: usize) -> NginxServerConfig {
        NginxServerConfig {
            variants,
            pool_threads: 2,
            requests: 8,
            page_bytes: 1024,
            ..Default::default()
        }
    }

    #[test]
    fn single_variant_server_serves_requests() {
        let report = run_nginx_experiment(&quick_config(1), false);
        assert_eq!(report.completed_requests, 8);
        assert!(!report.diverged);
        assert_eq!(report.attack, AttackOutcome::NotAttempted);
        assert!(report.throughput_rps > 0.0);
    }

    #[test]
    fn two_variant_server_serves_requests_without_divergence() {
        let report = run_nginx_experiment(&quick_config(2), false);
        assert_eq!(
            report.completed_requests, 8,
            "diverged: {}",
            report.diverged
        );
        assert!(!report.diverged);
    }

    #[test]
    fn attack_is_detected_with_two_variants() {
        let report = run_nginx_experiment(&quick_config(2), true);
        assert_eq!(report.attack, AttackOutcome::DetectedAndStopped);
        assert!(report.diverged);
    }

    #[test]
    fn attack_succeeds_against_a_single_unprotected_variant() {
        // Tailored to the only variant's layout, with nobody to compare
        // against: the exploit goes through.
        let report = run_nginx_experiment(&quick_config(1), true);
        assert_eq!(report.attack, AttackOutcome::Compromised);
        assert!(!report.diverged);
    }

    #[test]
    fn gadget_parser_reads_hex_addresses() {
        assert_eq!(
            parse_attack_gadget("GET /\r\nX-Gadget: 0xdeadbeef\r\n"),
            Some(0xdead_beef)
        );
        assert_eq!(parse_attack_gadget("GET / HTTP/1.1"), None);
    }

    #[test]
    fn grouped_placement_serves_requests_without_divergence() {
        let mut config = quick_config(2);
        config.mvee = config
            .mvee
            .with_placement(mvee_core::config::Placement::Grouped);
        let report = run_nginx_experiment(&config, false);
        assert_eq!(
            report.completed_requests, 8,
            "diverged: {}",
            report.diverged
        );
        assert!(!report.diverged);
    }

    #[test]
    fn network_link_lowers_effective_throughput() {
        let loopback = quick_config(1);
        let mut network = quick_config(1);
        network.link = LinkKind::GigabitNetwork;
        let r_loop = run_nginx_experiment(&loopback, false);
        let r_net = run_nginx_experiment(&network, false);
        // The modelled link cost reduces the effective throughput more for
        // the gigabit network than for loopback.
        let loop_ratio = r_loop.effective_throughput_rps / r_loop.throughput_rps;
        let net_ratio = r_net.effective_throughput_rps / r_net.throughput_rps;
        assert!(net_ratio < loop_ratio);
    }
}
