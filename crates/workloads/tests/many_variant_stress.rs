//! Many-variant, many-thread stress smoke tests for the sharded monitor.
//!
//! These runs put 8–16 diversified nginx variants with large worker pools
//! through the full rendezvous/replication path at once — the configuration
//! the monitor sharding refactor exists for.  Each test runs under the same
//! bounded-time watchdog pattern as the agent smoke tests, so a replay or
//! rendezvous deadlock (the flaky ~400 s hang the ROADMAP tracks) becomes a
//! prompt test failure with a description of the stuck configuration instead
//! of a stalled workflow.

use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use mvee_workloads::nginx::{run_nginx_experiment, AttackOutcome, NginxReport, NginxServerConfig};

/// How long the watchdog waits before declaring a deadlock.  Generous:
/// passing runs take seconds; the watchdog only matters for a wedged run,
/// where failing at four minutes still beats a 6-hour CI stall.
const WATCHDOG: Duration = Duration::from_secs(240);

/// Runs the experiment on a scenario thread and panics with a thread-dump
/// style description of the configuration if it does not finish in time.
fn run_with_watchdog(label: &str, config: NginxServerConfig, attack: bool) -> NginxReport {
    let (done_tx, done_rx) = mpsc::channel();
    let cfg = config;
    let scenario = thread::spawn(move || {
        let report = run_nginx_experiment(&cfg, attack);
        let _ = done_tx.send(report);
    });
    match done_rx.recv_timeout(WATCHDOG) {
        Ok(report) => {
            scenario.join().expect("scenario thread panicked");
            report
        }
        Err(_) => panic!(
            "{label} deadlocked: nginx stress run ({} variants x {} pool threads, \
             {} requests, {} monitor shards, agent {:?}) did not finish within {WATCHDOG:?}",
            config.variants,
            config.pool_threads,
            config.requests,
            config.monitor_shards,
            config.agent,
        ),
    }
}

#[test]
fn eight_variants_serve_without_divergence() {
    // 8 diversified variants × 4 workers + listener = 40 server threads.
    // (The 8-variant × 16-thread configuration lives in the agent smoke
    // tests, and larger nginx pools in the timed CI stress job: under the
    // full debug-build nginx sim their replay serialization needs more CPUs
    // than the smallest CI boxes have, and a scheduler-starved rendezvous is
    // indistinguishable from real divergence.)
    let config = NginxServerConfig::stress(8, 4, 6);
    let report = run_with_watchdog("8v x 4t", config, false);
    assert_eq!(
        report.completed_requests, 6,
        "diverged: {}",
        report.diverged
    );
    assert!(!report.diverged);
    assert_eq!(report.attack, AttackOutcome::NotAttempted);
}

#[test]
#[ignore = "heavy: run via the CI stress job or `cargo test -- --ignored` on a multi-core box"]
fn eight_variants_sixteen_threads_serve_without_divergence() {
    // The full many-thread configuration: 8 variants × 16 workers + listener
    // = 136 server threads hammering every rendezvous shard.
    let config = NginxServerConfig {
        lockstep_timeout: Duration::from_secs(60),
        ..NginxServerConfig::stress(8, 16, 6)
    };
    let report = run_with_watchdog("8v x 16t", config, false);
    assert_eq!(
        report.completed_requests, 6,
        "diverged: {}",
        report.diverged
    );
    assert!(!report.diverged);
}

#[test]
fn eight_variants_detect_a_tailored_attack() {
    // The security property must survive the sharded fast path: an exploit
    // tailored to one of eight diversified variants is still caught.
    let config = NginxServerConfig::stress(8, 4, 4);
    let report = run_with_watchdog("8v attack", config, true);
    assert_eq!(report.attack, AttackOutcome::DetectedAndStopped);
    assert!(report.diverged);
}

#[test]
fn sixteen_variants_smoke_with_a_small_pool() {
    // MAX_VARIANTS: one master and fifteen slaves, the paper's upper bound.
    let config = NginxServerConfig::stress(16, 2, 4);
    let report = run_with_watchdog("16v x 2t", config, false);
    assert_eq!(
        report.completed_requests, 4,
        "diverged: {}",
        report.diverged
    );
    assert!(!report.diverged);
}

#[test]
fn unsharded_monitor_still_handles_eight_variants() {
    // The shards = 1 ablation configuration must stay correct (just slower):
    // same workload, original global rendezvous table.
    let config = NginxServerConfig {
        monitor_shards: 1,
        ..NginxServerConfig::stress(8, 4, 4)
    };
    let report = run_with_watchdog("8v unsharded", config, false);
    assert_eq!(
        report.completed_requests, 4,
        "diverged: {}",
        report.diverged
    );
    assert!(!report.diverged);
}
