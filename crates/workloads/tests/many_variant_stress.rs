//! Many-variant, many-thread stress smoke tests for the sharded monitor.
//!
//! These runs put 8–16 diversified nginx variants with large worker pools
//! through the full rendezvous/replication path at once — the configuration
//! the monitor sharding refactor exists for.  Each test runs under the same
//! bounded-time watchdog pattern as the agent smoke tests, so a replay or
//! rendezvous deadlock (the flaky ~400 s hang the ROADMAP tracks) becomes a
//! prompt test failure with a description of the stuck configuration instead
//! of a stalled workflow.

use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use mvee_workloads::nginx::{run_nginx_experiment, AttackOutcome, NginxReport, NginxServerConfig};

/// How long the watchdog waits before declaring a deadlock.  Generous:
/// passing runs take seconds; the watchdog only matters for a wedged run,
/// where failing at four minutes still beats a 6-hour CI stall.
const WATCHDOG: Duration = Duration::from_secs(240);

/// Cores the 8-variant × 16-thread configuration needs before its replay
/// serialization makes progress; below this, a scheduler-starved rendezvous
/// is indistinguishable from real divergence.
const MANY_THREAD_MIN_CORES: usize = 4;

/// The parallelism actually available to this process.
fn available_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs the experiment on a scenario thread and panics with a thread-dump
/// style description of the configuration if it does not finish in time.
fn run_with_watchdog(label: &str, config: NginxServerConfig, attack: bool) -> NginxReport {
    let (done_tx, done_rx) = mpsc::channel();
    let cfg = config.clone();
    let scenario = thread::spawn(move || {
        let report = run_nginx_experiment(&cfg, attack);
        let _ = done_tx.send(report);
    });
    match done_rx.recv_timeout(WATCHDOG) {
        Ok(report) => {
            scenario.join().expect("scenario thread panicked");
            report
        }
        Err(_) => panic!(
            "{label} deadlocked: nginx stress run ({} variants x {} pool threads, \
             {} requests, {} monitor shards, agent {:?}) did not finish within {WATCHDOG:?}",
            config.variants,
            config.pool_threads,
            config.requests,
            config.mvee.shards,
            config.mvee.agent,
        ),
    }
}

#[test]
fn eight_variants_serve_without_divergence() {
    // 8 diversified variants × 4 workers + listener = 40 server threads.
    // (The 8-variant × 16-thread configuration lives in the agent smoke
    // tests, and larger nginx pools in the timed CI stress job: under the
    // full debug-build nginx sim their replay serialization needs more CPUs
    // than the smallest CI boxes have, and a scheduler-starved rendezvous is
    // indistinguishable from real divergence.)
    let config = NginxServerConfig::stress(8, 4, 6);
    let report = run_with_watchdog("8v x 4t", config, false);
    assert_eq!(
        report.completed_requests, 6,
        "diverged: {}",
        report.diverged
    );
    assert!(!report.diverged);
    assert_eq!(report.attack, AttackOutcome::NotAttempted);
}

#[test]
fn eight_variants_sixteen_threads_serve_without_divergence() {
    // The full many-thread configuration: 8 variants × 16 workers + listener
    // = 136 server threads hammering every rendezvous shard.  Gated on real
    // parallelism instead of a blanket #[ignore]: on a ≥4-core box (CI's
    // runners, most dev machines) it runs automatically; a 1-vCPU container
    // skips it rather than starving the replay into a fake divergence.
    // When it runs, it prints its throughput so the numbers can be recorded
    // in BASELINES.md (the CI stress job runs with --nocapture).
    let cores = available_cores();
    if cores < MANY_THREAD_MIN_CORES {
        eprintln!(
            "skipping 8v x 16t nginx stress: needs >= {MANY_THREAD_MIN_CORES} cores, have {cores}"
        );
        return;
    }
    // Optimized builds only: in a debug build the 136-thread replay is slow
    // enough to flirt with the watchdog even on multi-core runners, and the
    // timed CI stress job already runs this suite in release.
    if cfg!(debug_assertions) {
        eprintln!("skipping 8v x 16t nginx stress in a debug build: run with --release");
        return;
    }
    let base = NginxServerConfig::stress(8, 16, 6);
    let config = NginxServerConfig {
        mvee: base
            .mvee
            .clone()
            .with_lockstep_timeout(Duration::from_secs(60)),
        ..base
    };
    let report = run_with_watchdog("8v x 16t", config, false);
    assert_eq!(
        report.completed_requests, 6,
        "diverged: {}",
        report.diverged
    );
    assert!(!report.diverged);
    println!(
        "8v x 16t nginx stress on {cores} cores: {:?} total, {:.1} req/s",
        report.duration, report.throughput_rps
    );
}

#[test]
fn eight_variants_detect_a_tailored_attack() {
    // The security property must survive the sharded fast path: an exploit
    // tailored to one of eight diversified variants is still caught.
    let config = NginxServerConfig::stress(8, 4, 4);
    let report = run_with_watchdog("8v attack", config, true);
    assert_eq!(report.attack, AttackOutcome::DetectedAndStopped);
    assert!(report.diverged);
}

#[test]
fn sixteen_variants_smoke_with_a_small_pool() {
    // MAX_VARIANTS: one master and fifteen slaves, the paper's upper bound.
    let config = NginxServerConfig::stress(16, 2, 4);
    let report = run_with_watchdog("16v x 2t", config, false);
    assert_eq!(
        report.completed_requests, 4,
        "diverged: {}",
        report.diverged
    );
    assert!(!report.diverged);
}

#[test]
fn batched_monitor_still_serves_eight_variants() {
    // The batched configuration must not perturb a clean serving run: the
    // nginx path is I/O-only (every call rendezvouses synchronously), so a
    // batch=8 monitor has to behave identically under full server load.
    let base = NginxServerConfig::stress(8, 4, 6);
    let config = NginxServerConfig {
        mvee: base.mvee.clone().with_batch(8),
        ..base
    };
    let report = run_with_watchdog("8v batched", config, false);
    assert_eq!(
        report.completed_requests, 6,
        "diverged: {}",
        report.diverged
    );
    assert!(!report.diverged);
}

#[test]
fn batched_monitor_still_detects_a_tailored_attack() {
    // Under batching the compromised variant *defers* its mmap/mprotect
    // comparisons while the healthy variants rendezvous synchronously on
    // their normal responses, so the structural divergence is caught by the
    // rendezvous deadline (a bounded detection window) rather than an
    // instant key mismatch — but it must still be caught, and the shutdown
    // must still beat the watchdog.
    let base = NginxServerConfig::stress(8, 4, 4);
    let config = NginxServerConfig {
        mvee: base
            .mvee
            .clone()
            .with_batch(8)
            .with_lockstep_timeout(Duration::from_secs(8)),
        ..base
    };
    let report = run_with_watchdog("8v batched attack", config, true);
    assert_eq!(report.attack, AttackOutcome::DetectedAndStopped);
    assert!(report.diverged);
}

#[test]
fn unsharded_monitor_still_handles_eight_variants() {
    // The shards = 1 ablation configuration must stay correct (just slower):
    // same workload, original global rendezvous table.
    let base = NginxServerConfig::stress(8, 4, 4);
    let config = NginxServerConfig {
        mvee: base.mvee.clone().with_shards(1),
        ..base
    };
    let report = run_with_watchdog("8v unsharded", config, false);
    assert_eq!(
        report.completed_requests, 4,
        "diverged: {}",
        report.diverged
    );
    assert!(!report.diverged);
}
