//! The §5.4 covert channels as a runnable example: two colluding variants
//! exchange secret (diversified) pointer values through the replication
//! machinery itself, without the monitor noticing anything.
//!
//! ```bash
//! cargo run --example covert_channel
//! ```

use mvee::workloads::covert::{exchange_pointers, run_timing_channel, run_trylock_channel};

fn main() {
    let message = b"MVEE";
    let bits: Vec<bool> = message
        .iter()
        .flat_map(|byte| (0..8).map(move |i| (byte >> i) & 1 == 1))
        .collect();

    println!(
        "sending {} bits through the gettimeofday timing channel...",
        bits.len()
    );
    let timing = run_timing_channel(&bits);
    println!(
        "  accuracy: {:.0}%, divergence detected: {}",
        timing.accuracy() * 100.0,
        timing.diverged
    );

    println!("sending the same bits through the mutex-trylock channel...");
    let trylock = run_trylock_channel(&bits);
    println!(
        "  accuracy: {:.0}%, divergence detected: {}",
        trylock.accuracy() * 100.0,
        trylock.diverged
    );

    let decoded: Vec<u8> = trylock
        .received
        .chunks(8)
        .map(|c| {
            c.iter()
                .enumerate()
                .fold(0u8, |acc, (i, &b)| acc | (u8::from(b) << i))
        })
        .collect();
    println!(
        "  decoded by the slave variant: {:?}",
        String::from_utf8_lossy(&decoded)
    );

    println!("\nexchanging diversified pointer values between the variants...");
    let (master_learned, slave_learned, diverged) = exchange_pointers(0x7f1234, 0x7f9abc);
    println!("  master learned slave's pointer: 0x{master_learned:x}");
    println!("  slave learned master's pointer: 0x{slave_learned:x}");
    println!("  divergence detected: {diverged}");
    println!("\nAs the paper concludes, this is a limitation of MVEEs in general —");
    println!("the monitor only sees identical, benign-looking system calls.");
}
