//! The nginx use case (§5.5 of the paper) as a runnable example: a
//! thread-pooled web server with custom synchronization primitives runs as
//! two diversified variants under the MVEE while a wrk-style load generator
//! drives it, and a CVE-2013-2028-style exploit is thrown at it.
//!
//! ```bash
//! cargo run --example nginx_server
//! ```

use mvee::kernel::net::LinkKind;
use mvee::workloads::nginx::{run_nginx_experiment, AttackOutcome, NginxServerConfig};

fn main() {
    let mut config = NginxServerConfig {
        variants: 2,
        pool_threads: 4,
        page_bytes: 4096,
        requests: 32,
        link: LinkKind::Loopback,
        ..Default::default()
    };
    // The monitor knobs live in the shared MveeConfig block: shards, batch
    // and placement are set here exactly as for MveeBuilder or RunConfig.
    config.mvee = config.mvee.with_batch(8);

    println!(
        "serving {} requests with {} pool threads across {} variants...",
        config.requests, config.pool_threads, config.variants
    );
    let normal = run_nginx_experiment(&config, false);
    println!(
        "  completed   : {}/{}",
        normal.completed_requests, config.requests
    );
    println!(
        "  throughput  : {:.0} requests/second",
        normal.throughput_rps
    );
    println!("  divergence  : {}", normal.diverged);
    assert!(!normal.diverged, "benign traffic must not diverge");

    println!("\nreplaying the same setup with a tailored code-reuse attack appended...");
    let attacked = run_nginx_experiment(&config, true);
    println!("  attack outcome: {:?}", attacked.attack);
    assert_eq!(attacked.attack, AttackOutcome::DetectedAndStopped);

    println!("\nand against a single unprotected server (no MVEE)...");
    let single = NginxServerConfig {
        variants: 1,
        requests: 8,
        ..config
    };
    let unprotected = run_nginx_experiment(&single, true);
    println!("  attack outcome: {:?}", unprotected.attack);
    assert_eq!(unprotected.attack, AttackOutcome::Compromised);

    println!("\nThe MVEE detects the exploit as divergence before it takes effect,");
    println!("while the unprotected server is compromised — the paper's §5.5 result.");
}
