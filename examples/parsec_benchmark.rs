//! Runs one synthetic PARSEC/SPLASH workload from the Table 2 catalog under
//! all three synchronization agents and prints the resulting slowdowns —
//! a single row of the paper's Figure 5.
//!
//! ```bash
//! cargo run --release --example parsec_benchmark            # default: dedup
//! cargo run --release --example parsec_benchmark -- radiosity
//! ```

use mvee::sync_agent::agents::AgentKind;
use mvee::variant::runner::{run_mvee, run_native, RunConfig};
use mvee::workloads::catalog::{BenchmarkSpec, CATALOG};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "dedup".to_string());
    let spec = match BenchmarkSpec::by_name(&name) {
        Some(s) => s,
        None => {
            eprintln!("unknown benchmark '{name}'; available:");
            for b in CATALOG {
                eprintln!("  {}", b.name);
            }
            std::process::exit(1);
        }
    };

    let scale = 1e-5;
    let program = spec.paper_program(scale);
    println!(
        "{} ({}; paper: {:.1}s native, {:.0} syscalls/s, {:.0} sync ops/s)",
        spec.name,
        spec.suite.label(),
        spec.native_runtime_s,
        spec.syscalls_per_s,
        spec.sync_ops_per_s
    );
    println!(
        "synthetic program: {} threads, ~{} sync ops, ~{} syscalls\n",
        program.thread_count(),
        program.estimated_sync_ops(),
        program.estimated_syscalls()
    );

    let native = run_native(&program);
    println!("native: {:?}", native.duration);

    for agent in AgentKind::replication_agents() {
        for variants in [2usize, 4] {
            let report = run_mvee(&program, &RunConfig::new(variants, agent));
            println!(
                "{:<14} {} variants: {:>8.2?}  ({:.2}x native, {} stalls, clean: {})",
                agent.name(),
                variants,
                report.duration,
                report.slowdown_vs(&native),
                report.agent_stats.slave_stalls,
                report.completed_cleanly()
            );
        }
    }
}
