//! Quickstart: run a small multi-threaded program under the MVEE with the
//! wall-of-clocks agent and inspect what the monitor and the agent saw —
//! then drive the monitor by hand through the `ThreadPort` API.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use mvee::core::mvee::Mvee;
use mvee::kernel::syscall::{SyscallRequest, Sysno};
use mvee::sync_agent::agents::AgentKind;
use mvee::variant::program::{Action, Program, SyscallSpec, ThreadSpec};
use mvee::variant::runner::{run_mvee, run_native, RunConfig};

fn main() {
    // A two-thread program: both threads increment a shared counter under a
    // spinlock; thread 0 also reads a file and prints the final counter.
    let mut program = Program::new("quickstart")
        .with_resources(1, 1, 0, 1)
        .with_file("/greeting.txt", b"hello, multi-variant world");
    program.add_thread(ThreadSpec::new(vec![
        Action::Syscall(SyscallSpec::OpenInput {
            path: "/greeting.txt".into(),
        }),
        Action::Syscall(SyscallSpec::ReadChunk { len: 26 }),
        Action::Repeat {
            times: 100,
            body: vec![
                Action::LockAcquire(0),
                Action::AtomicAdd {
                    counter: 0,
                    amount: 1,
                },
                Action::LockRelease(0),
            ],
        },
        Action::BarrierWait {
            barrier: 0,
            participants: 2,
        },
        Action::PrintCounter(0),
    ]));
    program.add_thread(ThreadSpec::new(vec![
        Action::Repeat {
            times: 100,
            body: vec![
                Action::LockAcquire(0),
                Action::AtomicAdd {
                    counter: 0,
                    amount: 1,
                },
                Action::LockRelease(0),
            ],
        },
        Action::BarrierWait {
            barrier: 0,
            participants: 2,
        },
    ]));

    // Native run: one instance, no monitor.
    let native = run_native(&program);
    println!("native run      : {:?}", native.duration);
    println!(
        "native output   : {}",
        String::from_utf8_lossy(&native.output).trim()
    );

    // Two diversified variants in lockstep under the wall-of-clocks agent.
    let config = RunConfig::new(2, AgentKind::WallOfClocks)
        .with_diversity(mvee::variant::diversity::DiversityProfile::full(7));
    let report = run_mvee(&program, &config);
    println!(
        "\nMVEE run        : {:?} ({} variants, {} agent)",
        report.duration,
        report.variants,
        report.agent.name()
    );
    println!(
        "master output   : {}",
        String::from_utf8_lossy(report.master_output()).trim()
    );
    println!("slowdown        : {:.2}x", report.slowdown_vs(&native));
    println!("divergence      : {:?}", report.divergence);
    println!(
        "sync ops        : {} recorded, {} replayed",
        report.agent_stats.ops_recorded, report.agent_stats.ops_replayed
    );
    println!(
        "monitored calls : {} total, {} locksteped, {} replicated",
        report.monitor.total_syscalls,
        report.monitor.lockstep_syscalls,
        report.monitor.replicated_syscalls
    );

    assert!(
        report.completed_cleanly(),
        "the benign program must not diverge"
    );

    // The same gateway, by hand: each variant thread acquires its ThreadPort
    // once (`gateway.thread(t)` / `mvee.thread_port(v, t)`) and issues every
    // monitored call through it — no per-call (variant, thread) indices.
    let mvee = Mvee::builder().variants(2).manual_clock(true).build();
    let mut handles = Vec::new();
    for v in 0..2 {
        let port = mvee.thread_port(v, 0);
        handles.push(std::thread::spawn(move || {
            port.syscall(&SyscallRequest::new(Sysno::Brk).with_int(0))
                .expect("brk under lockstep");
            port.sync_op(0x1000, || ())
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    println!(
        "\nport demo       : {} monitored calls, {} in lockstep, clean: {}",
        mvee.monitor_stats().total_syscalls,
        mvee.monitor_stats().lockstep_syscalls,
        !mvee.monitor().has_diverged()
    );
}
