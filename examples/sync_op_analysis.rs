//! The sync-op identification pipeline (§4.3) end to end: parse an assembly
//! listing, run stage 1 + stage 2, propagate the `_Atomic` qualifier, and
//! instrument the identified operations.
//!
//! ```bash
//! cargo run --example sync_op_analysis
//! ```

use mvee::analysis::asm::Module;
use mvee::analysis::instrument::{instrument_module, verify_instrumentation};
use mvee::analysis::pointsto::{
    AndersenAnalysis, PointsToAnalysis, PointsToProgram, SteensgaardAnalysis,
};
use mvee::analysis::qualify::{QualificationModel, Qualifier};
use mvee::analysis::stage2::identify_sync_ops;

/// The paper's Listing 1 (an ad-hoc spinlock) compiled to the toy assembly.
const LISTING: &str = r#"
fn spinlock_lock
lock cmpxchg %ecx, lock_ptr_deref     ; line 4
fn spinlock_unlock
mov $0, unlock_ptr_deref              ; line 9
fn worker
mov %eax, iteration_count
lock xadd %eax, progress_counter
mov %ebx, scratch_buffer
"#;

fn main() {
    let module = Module::parse("listing1.o", LISTING);
    println!("parsed {} instructions", module.len());

    // Both lock_ptr and unlock_ptr point to the same global spinlock.
    let mut pointers = PointsToProgram::new();
    pointers.address_of("lock_ptr", "spinlock");
    pointers.copy("unlock_ptr", "lock_ptr");
    let andersen = AndersenAnalysis::solve(&pointers);
    let steensgaard = SteensgaardAnalysis::solve(&pointers);
    println!(
        "points-to: andersen says unlock_ptr -> {:?}, steensgaard says {:?}",
        andersen.points_to("unlock_ptr"),
        steensgaard.points_to("unlock_ptr")
    );

    let mut bindings = std::collections::BTreeMap::new();
    bindings.insert("lock_ptr_deref".to_string(), "lock_ptr".to_string());
    bindings.insert("unlock_ptr_deref".to_string(), "unlock_ptr".to_string());
    // Make the CAS operand's symbol a known sync variable for the alias query.
    let report = identify_sync_ops(&module, &bindings, Some(&andersen));
    let (i, ii, iii) = report.counts();
    println!(
        "stage 1+2: {} type (i), {} type (ii), {} type (iii) sync ops",
        i, ii, iii
    );

    // The _Atomic qualification workflow of §4.3.1.
    let mut model = QualificationModel::new();
    model
        .declare("spinlock", Qualifier::Plain)
        .declare("lock_ptr", Qualifier::Plain)
        .declare("unlock_ptr", Qualifier::Plain)
        .flow("spinlock", "lock_ptr")
        .flow("lock_ptr", "unlock_ptr");
    model.seed_from_sync_symbols(report.sync_symbols.iter().map(String::as_str));
    let promoted = model.propagate();
    println!(
        "_Atomic qualification: {} declarations promoted, diagnostics: {:?}",
        promoted,
        model.check()
    );

    // Finally, instrument.
    let (instrumented, summary) = instrument_module(&module, &report);
    println!(
        "instrumented {} sync ops ({} -> {} instructions), verified: {}",
        summary.wrapped_ops,
        summary.original_len,
        summary.instrumented_len,
        verify_instrumentation(&instrumented)
    );
}
