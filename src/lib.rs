//! Facade crate for the MVEE reproduction.
//!
//! This crate re-exports the public API of every workspace member so that
//! examples, integration tests and downstream users can depend on a single
//! crate.  See the individual crates for the full documentation:
//!
//! * [`core`] — the MVEE monitor (lockstep syscall monitoring, divergence
//!   detection, result replication, the syscall ordering clock).
//! * [`kernel`] — the simulated operating-system substrate.
//! * [`sync_agent`] — the total-order, partial-order and wall-of-clocks
//!   synchronization agents.
//! * [`variant`] — the variant program model, execution engine and diversity
//!   transforms.
//! * [`analysis`] — static sync-op identification and instrumentation.
//! * [`baselines`] — deterministic-multithreading and record/replay baselines.
//! * [`workloads`] — synthetic PARSEC/SPLASH workloads, the nginx use case
//!   and the covert-channel proofs of concept.
//!
//! # Quickstart
//!
//! Run a small two-thread program as two diversified variants in lockstep
//! under the wall-of-clocks agent:
//!
//! ```
//! use mvee::sync_agent::agents::AgentKind;
//! use mvee::variant::diversity::DiversityProfile;
//! use mvee::variant::program::{Action, Program, ThreadSpec};
//! use mvee::variant::runner::{run_mvee, RunConfig};
//!
//! let mut program = Program::new("doc-quickstart").with_resources(1, 0, 0, 1);
//! for _ in 0..2 {
//!     program.add_thread(ThreadSpec::new(vec![Action::Repeat {
//!         times: 25,
//!         body: vec![
//!             Action::LockAcquire(0),
//!             Action::AtomicAdd { counter: 0, amount: 1 },
//!             Action::LockRelease(0),
//!         ],
//!     }]));
//! }
//!
//! let config = RunConfig::new(2, AgentKind::WallOfClocks)
//!     .with_diversity(DiversityProfile::full(7));
//! let report = run_mvee(&program, &config);
//! assert!(report.completed_cleanly(), "{:?}", report.divergence);
//! assert!(report.agent_stats.ops_replayed >= report.agent_stats.ops_recorded);
//! ```

pub use mvee_analysis as analysis;
pub use mvee_baselines as baselines;
pub use mvee_core as core;
pub use mvee_kernel as kernel;
pub use mvee_sync_agent as sync_agent;
pub use mvee_variant as variant;
pub use mvee_workloads as workloads;
