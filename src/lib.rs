//! Facade crate for the MVEE reproduction.
//!
//! This crate re-exports the public API of every workspace member so that
//! examples, integration tests and downstream users can depend on a single
//! crate.  See the individual crates for the full documentation:
//!
//! * [`core`] — the MVEE monitor (lockstep syscall monitoring, divergence
//!   detection, result replication, the syscall ordering clock).
//! * [`kernel`] — the simulated operating-system substrate.
//! * [`sync_agent`] — the total-order, partial-order and wall-of-clocks
//!   synchronization agents.
//! * [`variant`] — the variant program model, execution engine and diversity
//!   transforms.
//! * [`analysis`] — static sync-op identification and instrumentation.
//! * [`baselines`] — deterministic-multithreading and record/replay baselines.
//! * [`workloads`] — synthetic PARSEC/SPLASH workloads, the nginx use case
//!   and the covert-channel proofs of concept.

pub use mvee_analysis as analysis;
pub use mvee_baselines as baselines;
pub use mvee_core as core;
pub use mvee_kernel as kernel;
pub use mvee_sync_agent as sync_agent;
pub use mvee_variant as variant;
pub use mvee_workloads as workloads;
