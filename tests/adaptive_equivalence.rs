//! Property tests: the adaptive wait strategy (spin → yield → park) is
//! observationally equivalent to the legacy spin/yield strategy.
//!
//! The waiter only changes *how* blocked agent threads burn time, never what
//! they observe, so for randomized mixed plans of monitored syscalls and
//! replicated sync ops a run under [`WaitStrategy::Adaptive`] must produce
//! exactly the same per-thread outcomes, record/replay counts, monitor
//! counters and divergence verdicts — including the first-mismatch slot and
//! blamed variant — as a run under [`WaitStrategy::SpinYield`].  The
//! deterministic companions pin the injected-mismatch verdict for every
//! agent kind and prove that an MVEE with slaves *parked* deep in a replay
//! wait still shuts down cleanly when divergence poisons the agent.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use mvee::core::mvee::Mvee;
use mvee::core::DivergenceReport;
use mvee::kernel::syscall::{SyscallRequest, Sysno};
use mvee::sync_agent::agents::AgentKind;
use mvee::sync_agent::guards::WaitStrategy;
use mvee::sync_agent::AgentStats;

/// Watchdog for the parked-shutdown scenario.
const WATCHDOG: Duration = Duration::from_secs(30);

fn build_mvee(variants: usize, threads: usize, kind: AgentKind, wait: WaitStrategy) -> Mvee {
    Mvee::builder()
        .variants(variants)
        .threads(threads.max(1))
        .agent(kind)
        .agent_config(
            mvee::sync_agent::AgentConfig::default()
                .with_buffer_capacity(256)
                .with_wait_strategy(wait),
        )
        .lockstep_timeout(Duration::from_secs(15))
        .manual_clock(true)
        .build()
}

/// The action an op tag stands for: an even tag is a benign monitored
/// syscall, an odd tag a replicated sync op (shared or thread-private
/// variable).  Identical across variants, so clean plans stay clean.
fn run_tag(port: &mvee::core::port::ThreadPort, thread: usize, i: usize, tag: u8) -> bool {
    match tag % 4 {
        0 => port
            .syscall(&SyscallRequest::new(Sysno::Gettimeofday))
            .is_ok(),
        2 => port
            .syscall(&SyscallRequest::new(Sysno::SchedYield))
            .is_ok(),
        1 => {
            // Contended: all threads share this variable.
            port.sync_op(0xC000, || ());
            true
        }
        _ => {
            // Thread-private variable; position-salted so the recorded
            // stream genuinely interleaves.
            port.sync_op(0x1_0000 + (thread as u64) * 64 + (i as u64 % 2) * 8, || ());
            true
        }
    }
}

/// Runs `plan` (one op-tag vector per logical thread, identical in every
/// variant) through a fresh MVEE on real OS threads.  Returns per-(variant,
/// thread) success counts, the agent counters and the divergence report.
fn run_plan(
    wait: WaitStrategy,
    kind: AgentKind,
    variants: usize,
    plan: &[Vec<u8>],
) -> (Vec<u64>, AgentStats, Option<DivergenceReport>) {
    let mvee = Arc::new(build_mvee(variants, plan.len(), kind, wait));
    let plan = Arc::new(plan.to_vec());
    let mut handles = Vec::new();
    for variant in 0..variants {
        for thread in 0..plan.len() {
            let mvee = Arc::clone(&mvee);
            let plan = Arc::clone(&plan);
            handles.push(std::thread::spawn(move || {
                let port = mvee.thread_port(variant, thread);
                let mut ok = 0u64;
                for (i, &tag) in plan[thread].iter().enumerate() {
                    if run_tag(&port, thread, i, tag) {
                        ok += 1;
                    }
                }
                ((variant, thread), ok)
            }));
        }
    }
    let mut collected: Vec<((usize, usize), u64)> = handles
        .into_iter()
        .map(|h| h.join().expect("plan thread panicked"))
        .collect();
    collected.sort_by_key(|(id, _)| *id);
    let oks = collected.into_iter().map(|(_, ok)| ok).collect();
    (oks, mvee.agent_stats(), mvee.divergence())
}

proptest! {
    /// Clean plans: both strategies succeed on every call, agree on every
    /// per-thread outcome and on the record/replay ledger, and neither
    /// manufactures a divergence.
    #[test]
    fn adaptive_matches_spin_yield_on_clean_plans(
        plan in proptest::collection::vec(proptest::collection::vec(0u8..4, 1..8), 1..3),
        variants in 2usize..4,
        kind_sel in 0usize..3,
    ) {
        let kind = AgentKind::replication_agents()[kind_sel];
        let (legacy_ok, legacy_stats, legacy_div) =
            run_plan(WaitStrategy::SpinYield, kind, variants, &plan);
        let (adaptive_ok, adaptive_stats, adaptive_div) =
            run_plan(WaitStrategy::Adaptive, kind, variants, &plan);
        prop_assert!(legacy_div.is_none(), "spin-yield diverged: {legacy_div:?}");
        prop_assert!(adaptive_div.is_none(), "adaptive diverged: {adaptive_div:?}");
        prop_assert_eq!(&legacy_ok, &adaptive_ok, "{:?}: outcomes differ", kind);
        // The replication ledger is strategy-independent; the stall
        // taxonomy (spins vs parks) legitimately differs.
        prop_assert_eq!(legacy_stats.ops_recorded, adaptive_stats.ops_recorded);
        prop_assert_eq!(legacy_stats.ops_replayed, adaptive_stats.ops_replayed);
    }
}

/// Injected mismatch: the last variant presents a divergent payload at a
/// fixed mid-plan position.  Both strategies must blame exactly the same
/// (thread, sequence, variant) for every agent kind.
#[test]
fn adaptive_and_spin_yield_report_identical_mismatch_verdicts() {
    for kind in AgentKind::replication_agents() {
        let mut reports = Vec::new();
        for wait in WaitStrategy::all() {
            let mvee = Arc::new(build_mvee(2, 1, kind, wait));
            let slave = {
                let mvee = Arc::clone(&mvee);
                std::thread::spawn(move || {
                    let port = mvee.thread_port(1, 0);
                    port.sync_op(0xA000, || ());
                    let mut r = port.syscall(
                        &SyscallRequest::new(Sysno::Write)
                            .with_fd(1)
                            .with_payload(b"agree"),
                    );
                    if r.is_ok() {
                        r = port.syscall(
                            &SyscallRequest::new(Sysno::Write)
                                .with_fd(1)
                                .with_payload(b"DIVERGENT"),
                        );
                    }
                    r
                })
            };
            let master = {
                let port = mvee.thread_port(0, 0);
                port.sync_op(0xA000, || ());
                let mut r = port.syscall(
                    &SyscallRequest::new(Sysno::Write)
                        .with_fd(1)
                        .with_payload(b"agree"),
                );
                if r.is_ok() {
                    r = port.syscall(
                        &SyscallRequest::new(Sysno::Write)
                            .with_fd(1)
                            .with_payload(b"expected"),
                    );
                }
                r
            };
            let slave = slave.join().unwrap();
            assert!(
                master.is_err() || slave.is_err(),
                "{kind:?}/{wait:?}: the divergent write must fail"
            );
            reports.push(mvee.divergence().expect("divergence report"));
        }
        let (legacy, adaptive) = (&reports[0], &reports[1]);
        assert_eq!(
            legacy.sequence, adaptive.sequence,
            "{kind:?}: first-mismatch slot differs"
        );
        assert_eq!(legacy.thread, adaptive.thread, "{kind:?}");
        assert_eq!(
            legacy.variant, adaptive.variant,
            "{kind:?}: blamed variant differs"
        );
        assert_eq!(
            std::mem::discriminant(&legacy.kind),
            std::mem::discriminant(&adaptive.kind),
            "{kind:?}: divergence kind differs"
        );
    }
}

/// Clean shutdown from a parked state: slave threads are parked deep in a
/// replay wait (their master counterparts never record), divergence strikes
/// on an unrelated thread, and the poison → unpark chain must release every
/// parked slave within the watchdog — under both strategies, with the same
/// verdict.
#[test]
fn divergence_unparks_waiting_slaves_for_clean_shutdown() {
    for kind in AgentKind::replication_agents() {
        let mut reports = Vec::new();
        for wait in WaitStrategy::all() {
            let mvee = Arc::new(build_mvee(2, 2, kind, wait));
            let (done_tx, done_rx) = mpsc::channel();
            // Thread 1 of the slave variant: replays an op thread 1 of the
            // master never records — it can only return via poison.
            let parked = {
                let mvee = Arc::clone(&mvee);
                let done_tx = done_tx.clone();
                std::thread::spawn(move || {
                    let port = mvee.thread_port(1, 1);
                    port.sync_op(0xBEEF, || ());
                    let _ = done_tx.send(());
                })
            };
            // Let the slave reach its parked state.
            std::thread::sleep(Duration::from_millis(50));
            // Thread 0: both variants arrive at a compared write, but the
            // slave's payload diverges — divergence, then poison.
            let slave_w = {
                let mvee = Arc::clone(&mvee);
                std::thread::spawn(move || {
                    let port = mvee.thread_port(1, 0);
                    port.syscall(
                        &SyscallRequest::new(Sysno::Write)
                            .with_fd(1)
                            .with_payload(b"BAD"),
                    )
                })
            };
            let master_r = mvee.thread_port(0, 0).syscall(
                &SyscallRequest::new(Sysno::Write)
                    .with_fd(1)
                    .with_payload(b"GOOD"),
            );
            let slave_r = slave_w.join().unwrap();
            assert!(master_r.is_err() || slave_r.is_err(), "{kind:?}/{wait:?}");
            match done_rx.recv_timeout(WATCHDOG) {
                Ok(()) => parked.join().expect("parked slave panicked"),
                Err(_) => panic!(
                    "{kind:?}/{wait:?}: parked slave missed the poison wake-up \
                     ({WATCHDOG:?} watchdog); stats: {:?}",
                    mvee.agent_stats()
                ),
            }
            assert!(mvee.agent().is_poisoned(), "{kind:?}/{wait:?}");
            reports.push(mvee.divergence().expect("divergence report"));
        }
        let (legacy, adaptive) = (&reports[0], &reports[1]);
        assert_eq!(legacy.thread, adaptive.thread, "{kind:?}");
        assert_eq!(legacy.variant, adaptive.variant, "{kind:?}");
        assert_eq!(
            std::mem::discriminant(&legacy.kind),
            std::mem::discriminant(&adaptive.kind),
            "{kind:?}"
        );
    }
}
