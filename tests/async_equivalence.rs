//! Property tests: the asynchronous ring transport is observably equivalent
//! to the synchronous [`ThreadPort`] transport.
//!
//! For randomized per-thread call plans, batch sizes ∈ {1, 8} and variant
//! counts ∈ {2, 8}, a run that drives every (variant, thread) through an
//! [`AsyncThreadPort`] — submission/completion rings plus a monitor-side
//! gateway worker — must produce exactly the same observable behaviour as a
//! run that issues the same calls through a synchronous `ThreadPort`: the
//! same per-call outcomes, the same clean/diverged verdict, the same
//! first-mismatch slot and blamed variant, and the same monitor statistics.
//! The gateway worker runs the identical monitor pipeline, so any
//! discrepancy is a transport bug by construction.
//!
//! The deterministic companions pin the divergence-report equivalence for an
//! injected mid-batch mismatch, and pin that a reaper parked on the
//! completion ring shuts down cleanly (wakes with the error, and the port
//! drops without hanging) instead of waiting on a verdict that will never
//! come.

use std::sync::Arc;

use proptest::prelude::*;

use mvee::core::async_port::SubmitOutcome;
use mvee::core::config::{Pollers, Transport};
use mvee::core::monitor::MonitorStats;
use mvee::core::mvee::Mvee;
use mvee::core::DivergenceReport;
use mvee::kernel::syscall::{SyscallRequest, Sysno};
use mvee::sync_agent::agents::AgentKind;

/// The two transports under comparison.
#[derive(Clone, Copy, PartialEq)]
enum Path {
    /// Synchronous: every call blocks inline in the monitor pipeline.
    Sync,
    /// Asynchronous: submission/completion rings + gateway worker.
    Async,
}

/// The call an op tag stands for.  All tags are benign (identical across
/// variants); the divergence scenarios inject their mismatch explicitly.
fn req_for(tag: u8) -> SyscallRequest {
    match tag % 5 {
        // Deferrable compare-only address-space calls: these pipeline on
        // the async transport.
        0 => SyscallRequest::new(Sysno::Brk).with_int(0),
        1 => SyscallRequest::new(Sysno::Mmap).with_int(8192),
        2 => SyscallRequest::new(Sysno::Mprotect).with_int(4096),
        // A replicated call: synchronous at the reap point on both paths.
        3 => SyscallRequest::new(Sysno::Gettimeofday),
        // Neither compared nor replicated nor ordered: pipelines.
        _ => SyscallRequest::new(Sysno::SchedYield),
    }
}

fn build_mvee(path: Path, variants: usize, threads: usize, batch: usize) -> Mvee {
    let transport = match path {
        Path::Sync => Transport::Sync,
        // The smallest depth the builder accepts for batch = 8: plans longer
        // than the ring exercise the backpressure path (drain completions
        // while waiting for space).
        Path::Async => Transport::AsyncRings {
            depth: 8,
            pollers: Pollers::PerPort,
        },
    };
    Mvee::builder()
        .variants(variants)
        .threads(threads.max(1))
        .agent(AgentKind::Null)
        .batch(batch)
        .transport(transport)
        .lockstep_timeout(std::time::Duration::from_secs(10))
        .manual_clock(true)
        .build()
}

/// Runs `plan` (one op-tag vector per logical thread, identical in every
/// variant) through a fresh MVEE on real OS threads, via the chosen
/// transport.  On the async path every pipelined ticket is reaped before the
/// thread finishes, so both runs account for every call.  Returns the
/// per-(variant, thread) success counts, the monitor stats and the
/// divergence report, if any.
fn run_plan(
    path: Path,
    variants: usize,
    batch: usize,
    plan: &[Vec<u8>],
) -> (Vec<u64>, MonitorStats, Option<DivergenceReport>) {
    let mvee = Arc::new(build_mvee(path, variants, plan.len(), batch));
    let plan = Arc::new(plan.to_vec());
    let mut handles = Vec::new();
    for variant in 0..variants {
        for thread in 0..plan.len() {
            let mvee = Arc::clone(&mvee);
            let plan = Arc::clone(&plan);
            handles.push(std::thread::spawn(move || {
                let mut ok = 0u64;
                match path {
                    Path::Sync => {
                        let port = mvee.thread_port(variant, thread);
                        for &tag in &plan[thread] {
                            if port.syscall(&req_for(tag)).is_ok() {
                                ok += 1;
                            }
                        }
                    }
                    Path::Async => {
                        let port = mvee.async_thread_port(variant, thread);
                        let mut tickets = Vec::new();
                        for &tag in &plan[thread] {
                            match port.submit(&req_for(tag)) {
                                SubmitOutcome::Completed(result) => {
                                    if result.is_ok() {
                                        ok += 1;
                                    }
                                }
                                SubmitOutcome::Ticket(ticket) => tickets.push(ticket),
                            }
                        }
                        for ticket in tickets {
                            if port.reap(ticket).is_ok() {
                                ok += 1;
                            }
                        }
                    }
                }
                ((variant, thread), ok)
            }));
        }
    }
    let mut collected: Vec<((usize, usize), u64)> = handles
        .into_iter()
        .map(|h| h.join().expect("plan thread panicked"))
        .collect();
    collected.sort_by_key(|(id, _)| *id);
    let oks = collected.into_iter().map(|(_, ok)| ok).collect();
    (oks, mvee.monitor_stats(), mvee.divergence())
}

proptest! {
    /// Clean plans: both transports succeed on every call and agree on
    /// every monitor counter, with the batch size (∈ {1, 8}) and the
    /// variant count (∈ {2, 8}) part of the generated case.
    #[test]
    fn async_transport_matches_sync_on_clean_plans(
        plan in proptest::collection::vec(proptest::collection::vec(0u8..5, 1..10), 1..3),
        variants_sel in 0usize..2,
        batch_sel in 0usize..2,
    ) {
        let variants = [2usize, 8][variants_sel];
        let batch = [1usize, 8][batch_sel];
        let (sync_ok, sync_stats, sync_div) = run_plan(Path::Sync, variants, batch, &plan);
        let (async_ok, async_stats, async_div) = run_plan(Path::Async, variants, batch, &plan);
        prop_assert!(sync_div.is_none(), "sync transport diverged: {sync_div:?}");
        prop_assert!(async_div.is_none(), "async transport diverged: {async_div:?}");
        prop_assert_eq!(&sync_ok, &async_ok,
            "per-thread outcomes differ (variants={}, batch={})", variants, batch);
        prop_assert_eq!(sync_stats, async_stats,
            "monitor stats differ (variants={}, batch={})", variants, batch);
    }
}

/// The injected-mismatch scenario: one thread, two variants, a mid-batch
/// divergent mprotect followed by a synchronous write that forces the
/// flush.  Both transports must blame exactly the same (thread, sequence,
/// variant) — the async rings must not smear the first-mismatch slot.
#[test]
fn transports_report_identical_mismatch_verdicts() {
    let mprotect = |len: i64| SyscallRequest::new(Sysno::Mprotect).with_int(len);
    let write = || {
        SyscallRequest::new(Sysno::Write)
            .with_fd(1)
            .with_payload(b"flush")
    };
    for batch in [1usize, 8] {
        let mut reports = Vec::new();
        for path in [Path::Sync, Path::Async] {
            let mvee = Arc::new(build_mvee(path, 2, 1, batch));
            let mut handles = Vec::new();
            for variant in 0..2 {
                let mvee = Arc::clone(&mvee);
                handles.push(std::thread::spawn(move || {
                    let lens: [i64; 3] = if variant == 0 {
                        [4096, 4096, 4096]
                    } else {
                        [4096, 666, 4096]
                    };
                    match path {
                        Path::Sync => {
                            let port = mvee.thread_port(variant, 0);
                            for len in lens {
                                port.syscall(&mprotect(len))?;
                            }
                            port.syscall(&write()).map(|_| ())
                        }
                        Path::Async => {
                            let port = mvee.async_thread_port(variant, 0);
                            for len in lens {
                                port.syscall(&mprotect(len))?;
                            }
                            port.syscall(&write()).map(|_| ())
                        }
                    }
                }));
            }
            let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert!(
                results.iter().any(|r| r.is_err()),
                "the mismatch must surface on at least one variant"
            );
            reports.push(mvee.divergence().expect("divergence report"));
        }
        let (sync, asynch) = (&reports[0], &reports[1]);
        assert_eq!(
            sync.sequence, asynch.sequence,
            "batch={batch}: first-mismatch slot differs between transports"
        );
        assert_eq!(sync.thread, asynch.thread);
        assert_eq!(sync.variant, asynch.variant, "blamed variant differs");
        assert_eq!(
            std::mem::discriminant(&sync.kind),
            std::mem::discriminant(&asynch.kind),
            "divergence kind differs"
        );
        assert_eq!(sync.sequence, 1, "must blame the exact mid-batch slot");
        assert_eq!(sync.variant, 1);
    }
}

/// A reaper parked on the completion ring while its gateway worker is
/// blocked in a rendezvous that diverges must wake with the error — and the
/// port must then drop cleanly (worker joined) with un-reaped tickets
/// outstanding, not hang.
#[test]
fn parked_reaper_shuts_down_cleanly_on_divergence() {
    let mvee = Arc::new(
        Mvee::builder()
            .variants(2)
            .threads(1)
            .agent(AgentKind::Null)
            .batch(8)
            .transport(Transport::AsyncRings {
                depth: 8,
                pollers: Pollers::PerPort,
            })
            .lockstep_timeout(std::time::Duration::from_secs(5))
            .manual_clock(true)
            .build(),
    );
    let mut handles = Vec::new();
    for variant in 0..2 {
        let mvee = Arc::clone(&mvee);
        handles.push(std::thread::spawn(move || {
            let port = mvee.async_thread_port(variant, 0);
            // Pipeline a deferrable call; its ticket stays un-reaped across
            // the divergence and the drop.
            let pending = match port.submit(&SyscallRequest::new(Sysno::Brk).with_int(0)) {
                SubmitOutcome::Ticket(t) => t,
                SubmitOutcome::Completed(_) => panic!("brk must pipeline"),
            };
            // A synchronous lockstep call with divergent payloads: the
            // worker blocks in the rendezvous, the caller parks in reap,
            // and the mismatch must wake it with the error.
            let payload: &[u8] = if variant == 0 { b"good" } else { b"evil" };
            let r = port.syscall(
                &SyscallRequest::new(Sysno::Write)
                    .with_fd(1)
                    .with_payload(payload),
            );
            assert!(r.is_err(), "the parked reaper must wake with the error");
            assert!(port.is_shut_down());
            let _ = pending; // dropped un-reaped on purpose
            drop(port); // must join the worker promptly, not hang
        }));
    }
    for h in handles {
        h.join()
            .expect("variant thread hung or panicked at shutdown");
    }
    assert!(mvee.divergence().is_some());
    assert_eq!(mvee.monitor().live_deferred(), 0);
}

/// The `Send` half of the async port's threading contract, checked from
/// outside the defining crate.
#[test]
fn async_thread_port_is_send_across_crates() {
    fn assert_send<T: Send>() {}
    assert_send::<mvee::core::async_port::AsyncThreadPort>();
}
