//! Property tests: the batched rendezvous (`arrive_batch`) is
//! observationally equivalent to the per-call rendezvous (`arrive`).
//!
//! For randomized per-thread call plans — including injected divergences —
//! and batch sizes swept over {1, 2, 8, 64}, every (variant, thread) must
//! observe the *same sequence* of [`ArrivalResult`]s from a run that
//! deposits its comparisons in batches as from one that rendezvouses call
//! by call, even though real OS threads race through the table in both
//! cases.  The derived verdicts must agree too: same divergence verdict,
//! same first-mismatch slot and blamed variant, and `live_slots() == 0`
//! once every variant has drained — mirroring `sharding_equivalence.rs`,
//! which pins the same property for the sharding axis.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use mvee::core::lockstep::{ArrivalResult, BatchArrival, LockstepTable};
use mvee::kernel::syscall::{ComparisonKey, SyscallRequest, Sysno};

/// The batch sizes the equivalence sweep covers; index 0 is the unbatched
/// baseline the others are compared against.
const BATCH_SIZES: [usize; 4] = [1, 2, 8, 64];

/// The comparison key thread `thread` of variant `variant` presents for its
/// `seq`-th call under op tag `tag`.  Tag 1 makes the *last* variant present
/// a divergent payload; every other tag is agreed upon by all variants.
fn key_for(tag: u8, thread: usize, seq: usize, variant: usize, variants: usize) -> ComparisonKey {
    let diverge = tag == 1 && variant == variants - 1;
    SyscallRequest::new(Sysno::Mprotect)
        .with_payload(&[tag, thread as u8, seq as u8, u8::from(diverge)])
        .comparison_key()
}

/// Runs `plan` (one op-tag vector per logical thread) through a table, all
/// variants' threads as real OS threads.  `batch == 1` uses the per-call
/// `arrive` hot path; larger sizes deposit the plan in `arrive_batch` blocks
/// of up to `batch` keys.  Returns the per-(variant, thread) sequences of
/// arrival results, with every slot consumed by every variant on the way
/// out (the "drain").
fn run_plan(batch: usize, variants: usize, plan: &[Vec<u8>]) -> Vec<Vec<ArrivalResult>> {
    let table = Arc::new(LockstepTable::new(variants));
    let plan = Arc::new(plan.to_vec());
    let mut handles = Vec::new();
    for variant in 0..variants {
        for thread in 0..plan.len() {
            let table = Arc::clone(&table);
            let plan = Arc::clone(&plan);
            handles.push(std::thread::spawn(move || {
                let mut results = Vec::new();
                for chunk_start in (0..plan[thread].len()).step_by(batch.max(1)) {
                    let chunk =
                        &plan[thread][chunk_start..(chunk_start + batch).min(plan[thread].len())];
                    if batch == 1 {
                        let seq = chunk_start;
                        let key = (thread, seq as u64);
                        let cmp = key_for(chunk[0], thread, seq, variant, variants);
                        results.push(table.arrive(key, variant, cmp, Duration::from_secs(10)));
                        table.consume(key, variant);
                    } else {
                        let block: Vec<BatchArrival> = chunk
                            .iter()
                            .enumerate()
                            .map(|(i, &tag)| {
                                let seq = chunk_start + i;
                                BatchArrival {
                                    key: (thread, seq as u64),
                                    cmp: key_for(tag, thread, seq, variant, variants),
                                }
                            })
                            .collect();
                        results.extend(table.arrive_batch(
                            variant,
                            &block,
                            Duration::from_secs(10),
                        ));
                        for arrival in &block {
                            table.consume(arrival.key, variant);
                        }
                    }
                }
                ((variant, thread), results)
            }));
        }
    }
    let mut collected: Vec<((usize, usize), Vec<ArrivalResult>)> = handles
        .into_iter()
        .map(|h| h.join().expect("plan thread panicked"))
        .collect();
    collected.sort_by_key(|(id, _)| *id);
    let results: Vec<Vec<ArrivalResult>> =
        collected.into_iter().map(|(_, results)| results).collect();
    assert_eq!(
        table.live_slots(),
        0,
        "batch={batch}: slots leaked after drain"
    );
    results
}

/// The divergence verdict a run's result sequences imply: the first
/// non-consistent result of each (variant, thread), as (thread, sequence,
/// blamed variant) for mismatches.
fn first_mismatches(
    results: &[Vec<ArrivalResult>],
    threads: usize,
) -> Vec<Option<(usize, usize, usize)>> {
    results
        .iter()
        .enumerate()
        .map(|(flat, seq_results)| {
            let thread = flat % threads;
            seq_results.iter().enumerate().find_map(|(seq, r)| match r {
                ArrivalResult::Mismatch(bad, _, _) => Some((thread, seq, *bad)),
                _ => None,
            })
        })
        .collect()
}

proptest! {
    /// Batched and unbatched tables produce identical `ArrivalResult`
    /// sequences — hence identical divergence verdicts and identical
    /// first-mismatch slot/variant — for randomized plans and thread
    /// interleavings at every swept batch size, and both reclaim every slot.
    #[test]
    fn batched_rendezvous_is_equivalent_to_unbatched(
        plan in proptest::collection::vec(proptest::collection::vec(0u8..4, 1..7), 1..5),
        variants in 2usize..5,
        batch_idx in 1usize..4,
    ) {
        let batch = BATCH_SIZES[batch_idx];
        let unbatched = run_plan(BATCH_SIZES[0], variants, &plan);
        let batched = run_plan(batch, variants, &plan);
        prop_assert_eq!(
            first_mismatches(&unbatched, plan.len()),
            first_mismatches(&batched, plan.len())
        );
        prop_assert_eq!(unbatched, batched);
    }

    /// Divergence-free plans stay divergence free at every batch size: no
    /// batch boundary may manufacture a mismatch or a timeout.
    #[test]
    fn clean_plans_stay_clean_at_every_batch_size(
        ops in proptest::collection::vec(2u8..4, 1..25),
        variants in 2usize..5,
    ) {
        let plan = vec![ops];
        for &batch in &BATCH_SIZES {
            let results = run_plan(batch, variants, &plan);
            for per_thread in &results {
                prop_assert!(
                    per_thread.iter().all(|r| *r == ArrivalResult::Consistent),
                    "batch={} produced a spurious verdict: {:?}",
                    batch,
                    per_thread
                );
            }
        }
    }
}

/// Deterministic companion to the property: a mid-batch divergence at every
/// swept batch size must blame exactly the injected slot in both modes.
#[test]
fn injected_mid_plan_divergence_is_pinned_to_its_slot_at_every_batch_size() {
    // Tag 1 at position 3 of 7: the last variant diverges there.
    let plan = vec![vec![0u8, 2, 3, 1, 2, 0, 3]];
    let baseline = run_plan(1, 3, &plan);
    let expected = first_mismatches(&baseline, 1);
    assert_eq!(
        expected,
        vec![Some((0, 3, 2)); 3],
        "the baseline must blame variant 2 at slot (0, 3)"
    );
    for &batch in &BATCH_SIZES[1..] {
        let batched = run_plan(batch, 3, &plan);
        assert_eq!(
            first_mismatches(&batched, 1),
            expected,
            "batch={batch} moved the blame"
        );
        assert_eq!(batched, baseline, "batch={batch} changed a verdict");
    }
}
