//! Fault injection against the divergence journal: torn files, bit rot and
//! variants dying mid-recording must each surface as a *typed* error (or a
//! faithful timeout report) — never a hang, a panic, or a bogus verdict.
//!
//! Every live-MVEE scenario runs under a watchdog: the failure mode these
//! tests guard against is a shutdown path that waits forever.

use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

use mvee::core::config::RecoveryPolicy;
use mvee::core::journal::{replay, Journal, JournalRecorder, ReplayError};
use mvee::core::mvee::Mvee;
use mvee::core::{DivergenceKind, JournalError, JournalMode};
use mvee::kernel::syscall::{SyscallRequest, Sysno};
use mvee::sync_agent::agents::AgentKind;

const WATCHDOG: Duration = Duration::from_secs(30);

/// Runs `f` on a scenario thread and panics if it outlives the watchdog.
fn with_watchdog<T: Send + 'static>(label: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (done_tx, done_rx) = mpsc::channel();
    let scenario = thread::spawn(move || {
        let _ = done_tx.send(f());
    });
    match done_rx.recv_timeout(WATCHDOG) {
        Ok(value) => {
            scenario.join().expect("scenario thread panicked");
            value
        }
        Err(_) => panic!("{label}: journal fault scenario deadlocked ({WATCHDOG:?})"),
    }
}

/// Records a real (clean) two-variant run and returns the journal bytes.
fn record_clean_run() -> Vec<u8> {
    let recorder = Arc::new(JournalRecorder::new());
    let mvee = Arc::new(
        Mvee::builder()
            .variants(2)
            .threads(1)
            .agent(AgentKind::Null)
            .journal(JournalMode::Record(Arc::clone(&recorder)))
            .lockstep_timeout(Duration::from_secs(10))
            .manual_clock(true)
            .build(),
    );
    let mut handles = Vec::new();
    for variant in 0..2 {
        let mvee = Arc::clone(&mvee);
        handles.push(thread::spawn(move || {
            let port = mvee.thread_port(variant, 0);
            for _ in 0..3 {
                port.syscall(&SyscallRequest::new(Sysno::Brk).with_int(0))
                    .expect("clean run");
            }
            port.syscall(&SyscallRequest::new(Sysno::Gettimeofday))
                .expect("clean run");
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(mvee.divergence().is_none());
    recorder.finish()
}

#[test]
fn every_truncation_point_yields_a_typed_error() {
    let bytes = record_clean_run();
    for cut in 0..bytes.len() {
        match Journal::decode(&bytes[..cut]) {
            Err(
                JournalError::Truncated { .. }
                | JournalError::MissingEnd
                | JournalError::CorruptRecord { .. },
            ) => {}
            Ok(_) => panic!(
                "a {cut}-byte prefix of a {}-byte journal decoded",
                bytes.len()
            ),
            Err(other) => panic!("truncation at {cut} gave unexpected error {other:?}"),
        }
        // The replay layer wraps, never panics or hangs.
        assert!(matches!(
            replay(&bytes[..cut]),
            Err(ReplayError::Journal(_))
        ));
    }
}

#[test]
fn corrupted_record_bodies_fail_their_crc_with_the_right_index() {
    let bytes = record_clean_run();
    // Flip one bit in the first record's body (frame starts right after the
    // 14-byte header: 4 length bytes + 4 CRC bytes, body after that).
    let mut corrupt = bytes.clone();
    let body_at = 14 + 8;
    corrupt[body_at] ^= 0x40;
    match Journal::decode(&corrupt) {
        Err(JournalError::CorruptRecord {
            index: 0,
            offset: 14,
        }) => {}
        other => panic!("expected CorruptRecord at index 0, got {other:?}"),
    }

    // Same flip, somewhere in the middle of the stream: the reported index
    // must point at the damaged record, not at record zero.
    let mut corrupt = bytes.clone();
    let mut offset = 14usize;
    let mut index = 0u64;
    // Walk two frames forward, then damage the third record's body.
    for _ in 0..2 {
        let len = u32::from_le_bytes(corrupt[offset..offset + 4].try_into().unwrap()) as usize;
        offset += 8 + len;
        index += 1;
    }
    corrupt[offset + 8] ^= 0x01;
    match Journal::decode(&corrupt) {
        Err(JournalError::CorruptRecord {
            index: i,
            offset: o,
        }) => {
            assert_eq!(i, index);
            assert_eq!(o, offset);
        }
        other => panic!("expected CorruptRecord at index {index}, got {other:?}"),
    }

    // Salvage decode keeps everything before the damage.
    let (salvaged, err) = Journal::decode_lossy(&corrupt).expect("header is intact");
    assert_eq!(salvaged.records.len() as u64, index);
    assert!(matches!(err, Some(JournalError::CorruptRecord { .. })));
}

#[test]
fn journal_without_end_trailer_is_torn_but_salvageable() {
    let bytes = record_clean_run();
    // Strip the End frame (its length lives 8+9 bytes from the stream end:
    // the End body is tag + u64 = 9 bytes plus the 8-byte frame header).
    let torn = &bytes[..bytes.len() - (8 + 9)];
    assert_eq!(Journal::decode(torn), Err(JournalError::MissingEnd));
    let (salvaged, err) = Journal::decode_lossy(torn).expect("header is intact");
    assert_eq!(err, Some(JournalError::MissingEnd));
    // Every record before the tear survives, and the salvaged journal
    // replays cleanly after re-encoding (encode appends a fresh trailer).
    let full = Journal::decode(&bytes).unwrap();
    assert_eq!(salvaged.records, full.records);
    let run = replay(&salvaged.encode()).expect("salvaged journal must replay");
    assert!(run.divergence.is_none());
}

#[test]
fn mid_run_snapshots_are_always_decodable() {
    // `finish` is a snapshot, not a destructor: taken mid-run (here: while
    // more records keep arriving), each snapshot is a complete journal.
    let recorder = JournalRecorder::with_header(mvee::core::journal::JournalHeader {
        version: mvee::core::journal::JOURNAL_VERSION,
        variants: 2,
        threads: 1,
        shards: 1,
        batch: 1,
    });
    for i in 0..10u64 {
        recorder.record_sync_op(0, 0);
        let snapshot = recorder.finish();
        let journal = Journal::decode(&snapshot)
            .unwrap_or_else(|e| panic!("snapshot after {} records: {e}", i + 1));
        assert_eq!(journal.records.len() as u64, i + 1);
    }
}

/// A variant dies mid-batch while the run is being recorded: the survivor's
/// flush must time out with a rendezvous report (not hang), and replaying
/// the recorded journal must reproduce that exact report even though one
/// side's arrivals are missing.
#[test]
fn variant_killed_mid_batch_yields_a_replayable_timeout_report() {
    let (live, bytes) = with_watchdog("variant killed mid-batch", || {
        let recorder = Arc::new(JournalRecorder::new());
        let mvee = Arc::new(
            Mvee::builder()
                .variants(2)
                .threads(1)
                .agent(AgentKind::Null)
                .batch(8)
                .journal(JournalMode::Record(Arc::clone(&recorder)))
                .lockstep_timeout(Duration::from_millis(200))
                .manual_clock(true)
                .build(),
        );
        let survivor = {
            let mvee = Arc::clone(&mvee);
            thread::spawn(move || {
                let port = mvee.thread_port(0, 0);
                // Defer a batch of comparisons, then force the flush with a
                // synchronous write; the peer never arrives.
                for _ in 0..3 {
                    let _ = port.syscall(&SyscallRequest::new(Sysno::Mprotect).with_int(4096));
                }
                port.syscall(
                    &SyscallRequest::new(Sysno::Write)
                        .with_fd(1)
                        .with_payload(b"flush"),
                )
            })
        };
        // Variant 1 "dies" before issuing anything: its thread just exits.
        let outcome = survivor.join().expect("survivor thread panicked");
        assert!(outcome.is_err(), "the flush must surface the timeout");
        let live = mvee.divergence().expect("timeout divergence report");
        (live, recorder.finish())
    });

    assert!(
        matches!(live.kind, DivergenceKind::RendezvousTimeout { .. }),
        "expected a rendezvous timeout, got {live:?}"
    );
    let run = replay(&bytes).expect("recorded timeout journal must replay");
    assert_eq!(run.divergence, Some(live));
    assert_eq!(run.header.batch, 8);
}

/// Builds a 3-variant journaled MVEE under the quarantine recovery policy
/// for the kill-and-respawn matrices.
fn recovery_mvee(
    recorder: &Arc<JournalRecorder>,
    batch: usize,
    snapshot_every: u64,
    timeout: Duration,
) -> Arc<Mvee> {
    let mut builder = Mvee::builder()
        .variants(3)
        .threads(1)
        .agent(AgentKind::Null)
        .batch(batch)
        .journal(JournalMode::Record(Arc::clone(recorder)))
        .recovery(RecoveryPolicy::quarantine())
        .lockstep_timeout(timeout)
        .manual_clock(true);
    if snapshot_every > 0 {
        builder = builder.snapshot_every(snapshot_every);
    }
    Arc::new(builder.build())
}

/// A variant killed *mid-batch* — its staged mismatch sits inside a
/// half-full deferred batch when the flush settles it — must be
/// quarantined, the survivors' flush and trailing calls must succeed, and
/// the quiesced table must hold no leaked rendezvous registrations.
#[test]
fn variant_killed_mid_batch_is_quarantined_and_survivors_settle() {
    let recorder = Arc::new(JournalRecorder::new());
    let mvee = recovery_mvee(&recorder, 8, 0, Duration::from_secs(10));
    with_watchdog("kill mid-batch under quarantine", {
        let mvee = Arc::clone(&mvee);
        move || {
            let mut handles = Vec::new();
            for variant in 0..3 {
                let mvee = Arc::clone(&mvee);
                handles.push(thread::spawn(move || {
                    let port = mvee.thread_port(variant, 0);
                    // Three deferred comparisons; the victim's middle one
                    // is the divergent twin (same call, different length).
                    for i in 0..3 {
                        let len = if variant == 2 && i == 1 { 666 } else { 4096 };
                        let r = port.syscall(&SyscallRequest::new(Sysno::Mprotect).with_int(len));
                        if variant == 2 && r.is_err() {
                            return (variant, false);
                        }
                    }
                    // The synchronous write flushes the half-full batch and
                    // settles the staged mismatch at the latest here.
                    let flush = port.syscall(
                        &SyscallRequest::new(Sysno::Write)
                            .with_fd(1)
                            .with_payload(b"flush"),
                    );
                    if variant == 2 && flush.is_err() {
                        return (variant, false);
                    }
                    // The degraded-call witness: counted after the
                    // quarantine landed.
                    (
                        variant,
                        port.syscall(&SyscallRequest::new(Sysno::Gettimeofday))
                            .is_ok(),
                    )
                }));
            }
            let mut done: Vec<(usize, bool)> =
                handles.into_iter().map(|h| h.join().unwrap()).collect();
            done.sort_by_key(|(v, _)| *v);
            done.into_iter().map(|(_, ok)| ok).collect::<Vec<bool>>()
        }
    });
    assert_eq!(mvee.divergence(), None, "quarantine keeps serving");
    assert_eq!(mvee.quarantined_variants(), vec![2]);
    assert!(matches!(
        mvee.quarantine_reports()[0].kind,
        DivergenceKind::SyscallMismatch { .. }
    ));
    assert_eq!(mvee.monitor().live_slots(), 0, "no leaked registrations");
    // The recorded journal still replays, and re-derives exactly the
    // verdict that triggered the quarantine — the victim's divergent
    // arrival is in the history, and replay does not trust verdicts.
    let run = replay(&recorder.finish()).expect("degraded journal must replay");
    assert_eq!(run.divergence.as_ref(), Some(&mvee.quarantine_reports()[0]));
}

/// A variant that goes silent *mid-replicated-call* — it consumed one
/// replicated outcome, then never arrives again — must be quarantined via
/// the rendezvous timeout, and the survivors' blocked call must then
/// succeed against the reduced quorum instead of erroring out.
#[test]
fn variant_silent_mid_replicated_call_is_quarantined_by_timeout() {
    let recorder = Arc::new(JournalRecorder::new());
    let mvee = recovery_mvee(&recorder, 1, 0, Duration::from_millis(300));
    with_watchdog("silent death mid-replicated-call", {
        let mvee = Arc::clone(&mvee);
        move || {
            let mut handles = Vec::new();
            for variant in 0..3 {
                let mvee = Arc::clone(&mvee);
                handles.push(thread::spawn(move || {
                    let port = mvee.thread_port(variant, 0);
                    // Everyone joins one replicated call...
                    port.syscall(&SyscallRequest::new(Sysno::Gettimeofday))
                        .expect("the full quorum serves the first call");
                    if variant == 2 {
                        return; // ...then the victim dies silently.
                    }
                    // The survivors' synchronous write can only resolve by
                    // timing the absentee out into quarantine.
                    port.syscall(
                        &SyscallRequest::new(Sysno::Write)
                            .with_fd(1)
                            .with_payload(b"degraded"),
                    )
                    .expect("survivors must be re-resolved, not failed");
                }));
            }
            for h in handles {
                h.join().expect("scenario thread panicked");
            }
        }
    });
    assert_eq!(mvee.divergence(), None, "the run must keep serving");
    assert_eq!(mvee.quarantined_variants(), vec![2]);
    let report = &mvee.quarantine_reports()[0];
    assert!(
        matches!(report.kind, DivergenceKind::RendezvousTimeout { .. }),
        "silence is a timeout, not a mismatch: {report:?}"
    );
    assert_eq!(report.variant, 2, "the absentee is the blamed party");
    assert_eq!(mvee.monitor().live_slots(), 0);
}

/// A variant killed *during the snapshot interval* — after the last agreed
/// snapshot, before the next one lands — must respawn from that snapshot
/// and replay the journal suffix forward; the survivors' snapshots keep
/// advancing throughout.
#[test]
fn variant_killed_during_snapshot_write_respawns_from_the_last_snapshot() {
    let recorder = Arc::new(JournalRecorder::new());
    let mvee = recovery_mvee(&recorder, 1, 2, Duration::from_secs(10));
    let phase = |mvee: &Arc<Mvee>, sync_ops: usize, poison: bool| {
        let mut handles = Vec::new();
        for variant in 0..3 {
            let mvee = Arc::clone(mvee);
            handles.push(thread::spawn(move || {
                let port = mvee.thread_port(variant, 0);
                for _ in 0..sync_ops {
                    port.sync_op(0x1000, || ());
                }
                let len = if poison && variant == 2 { 666 } else { 4096 };
                let _ = port.syscall(&SyscallRequest::new(Sysno::Mprotect).with_int(len));
                let _ = port.syscall(&SyscallRequest::new(Sysno::Gettimeofday));
            }));
        }
        for h in handles {
            h.join().expect("phase thread panicked");
        }
    };
    with_watchdog("kill during snapshot write", {
        let mvee = Arc::clone(&mvee);
        move || {
            // An agreed prefix crossing the 2-op snapshot interval twice.
            phase(&mvee, 4, false);
            assert!(
                mvee.latest_snapshot(2).is_some(),
                "the agreed prefix must have installed a snapshot"
            );
            let agreed = mvee.latest_snapshot(2).unwrap().sync_ops;
            // One more sync op leaves the victim mid-interval — its next
            // snapshot is pending, never written — when the kill lands.
            phase(&mvee, 1, true);
            assert_eq!(mvee.quarantined_variants(), vec![2]);
            assert_eq!(mvee.divergence(), None);
            // Quiescent boundary: respawn restores the *last agreed*
            // snapshot, not the unwritten pending one.
            let report = mvee.respawn_variant(2).expect("respawn must succeed");
            assert_eq!(report.restored_sync_ops, Some(agreed));
            assert!(
                report.replayed_records > 0,
                "the journal suffix past the snapshot is the catch-up work"
            );
            assert_eq!(report.dropped_bytes, 0, "an in-proc journal is never torn");
            // The full quorum serves again.
            phase(&mvee, 1, false);
            assert!(mvee.quarantined_variants().is_empty() || mvee.divergence().is_none());
        }
    });
    assert!(mvee.quarantined_variants().is_empty());
    assert_eq!(mvee.monitor_stats().respawns, 1);
    assert_eq!(mvee.monitor().live_slots(), 0);
}

/// The torn-write regression for [`Journal::recover_from_bytes`]: a write
/// cut at *any* byte — mid-header, mid-frame, mid-trailer — must salvage
/// exactly the longest complete-frame prefix and account for every dropped
/// byte, so a respawn after a mid-write death reads truth, not garbage.
#[test]
fn torn_write_suffixes_are_salvaged_with_every_dropped_byte_accounted() {
    let bytes = record_clean_run();
    let full = Journal::decode(&bytes).unwrap();
    // Walk the frame boundaries (records start after the 14-byte header;
    // each frame is a 4-byte length + 4-byte CRC + body) so each cut's
    // expected salvage is known independently of the decoder under test.
    let mut boundaries = vec![14usize];
    let mut offset = 14usize;
    while offset < bytes.len() {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        offset += 8 + len;
        boundaries.push(offset);
    }
    assert_eq!(*boundaries.last().unwrap(), bytes.len());
    for cut in 0..=bytes.len() {
        let torn = &bytes[..cut];
        if cut < 14 {
            assert!(
                Journal::recover_from_bytes(torn).is_err(),
                "a headerless stream ({cut} bytes) has nothing to salvage"
            );
            continue;
        }
        let recovered = Journal::recover_from_bytes(torn)
            .unwrap_or_else(|e| panic!("cut at {cut}: header is intact but salvage failed: {e}"));
        let whole_frames = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        // The final frame is the End trailer, so the salvageable record
        // count is capped by the real record count.
        let expect = whole_frames.min(full.records.len());
        assert_eq!(recovered.journal.records.len(), expect, "cut at {cut}");
        assert_eq!(&recovered.journal.records[..], &full.records[..expect]);
        assert_eq!(
            recovered.dropped_bytes,
            cut - boundaries[whole_frames],
            "cut at {cut}: the dropped suffix must be exactly the torn tail"
        );
        assert_eq!(
            recovered.damage.is_none(),
            cut == bytes.len(),
            "cut at {cut}: only the complete stream is undamaged"
        );
    }
}

/// A report contradicted by the recorded arrivals must be rejected as a
/// `VerdictMismatch` — replay re-derives verdicts, it does not trust them.
#[test]
fn tampered_verdicts_are_rejected_on_replay() {
    let recorder = JournalRecorder::with_header(mvee::core::journal::JournalHeader {
        version: mvee::core::journal::JOURNAL_VERSION,
        variants: 2,
        threads: 1,
        shards: 1,
        batch: 1,
    });
    let key = SyscallRequest::new(Sysno::Brk).with_int(0).comparison_key();
    // Both variants deposit identical keys...
    recorder.record_arrival(0, 0, 0, 0, &key);
    recorder.record_arrival(1, 0, 0, 0, &key);
    // ...but the journal claims they mismatched.
    recorder.record_diverge(&mvee::core::DivergenceReport {
        kind: DivergenceKind::SyscallMismatch {
            master: Sysno::Brk,
            variant: Sysno::Brk,
        },
        thread: 0,
        sequence: 0,
        variant: 1,
    });
    match replay(&recorder.finish()) {
        Err(ReplayError::VerdictMismatch { .. }) => {}
        other => panic!("expected VerdictMismatch, got {other:?}"),
    }
}
