//! Golden-file tests pinning the divergence journal's binary format.
//!
//! The journal is a persistence format: a `.journal` recorded today must
//! still decode (and replay) under every future build that speaks
//! [`JOURNAL_VERSION`].  These tests freeze the byte stream two ways:
//!
//! * checked-in fixtures under `tests/golden/` are regenerated in memory by
//!   the same deterministic recorder calls and compared byte-for-byte — any
//!   unversioned codec change fails with a hex diff naming the first
//!   differing offset;
//! * the minimal journal (header + `End` trailer) is pinned as a hex
//!   literal in this file, so even a wholesale fixture regeneration cannot
//!   silently move the format.
//!
//! To bless an *intentional* format change: bump [`JOURNAL_VERSION`], run
//! `MVEE_BLESS_GOLDEN=1 cargo test --test journal_golden`, update the hex
//! literal below and commit the new fixtures.

use mvee::core::journal::{
    replay, ClassKind, Journal, JournalHeader, JournalRecorder, JOURNAL_HEADER_LEN, JOURNAL_MAGIC,
    JOURNAL_VERSION,
};
use mvee::core::monitor::DEFERRED_SEQ_BIT;
use mvee::core::{DivergenceKind, DivergenceReport};
use mvee::kernel::error::Errno;
use mvee::kernel::syscall::{
    fnv1a, ComparisonKey, SyscallArg, SyscallOutcome, SyscallRequest, Sysno,
};

/// The complete minimal journal — header (2 variants, 1 thread, 1 shard,
/// batch 1) followed by an empty-stream `End` trailer — as hex.  Pins the
/// magic, the header layout, the frame layout and the CRC polynomial all at
/// once.
const MINIMAL_JOURNAL_HEX: &str = "4d564a4c010002000100010001000900000067796882070000000000000000";

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` against the checked-in fixture, blessing it when
/// `MVEE_BLESS_GOLDEN` is set; on drift, fails with a hex diff.
fn assert_golden(name: &str, actual: &[u8]) {
    let path = golden_path(name);
    if std::env::var_os("MVEE_BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("blessed {} ({} bytes)", path.display(), actual.len());
        return;
    }
    let expected = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with MVEE_BLESS_GOLDEN=1 to create it",
            path.display()
        )
    });
    if expected != actual {
        panic!(
            "journal format drift against {}:\n{}\n\
             If this change is intentional, bump JOURNAL_VERSION and re-bless \
             with MVEE_BLESS_GOLDEN=1.",
            path.display(),
            hex_diff(&expected, actual)
        );
    }
}

/// Renders the first difference between two byte strings: offset, lengths
/// and a 16-byte-per-row hex dump of the surrounding window on both sides.
fn hex_diff(expected: &[u8], actual: &[u8]) -> String {
    use std::fmt::Write as _;
    let first = expected
        .iter()
        .zip(actual.iter())
        .position(|(e, a)| e != a)
        .unwrap_or_else(|| expected.len().min(actual.len()));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "first difference at byte {first} (expected {} bytes, got {})",
        expected.len(),
        actual.len()
    );
    let start = first.saturating_sub(16) & !15;
    for (label, bytes) in [("expected", expected), ("actual  ", actual)] {
        for row in 0..3 {
            let at = start + row * 16;
            if at >= bytes.len() {
                break;
            }
            let end = (at + 16).min(bytes.len());
            let hex: Vec<String> = bytes[at..end].iter().map(|b| format!("{b:02x}")).collect();
            let _ = writeln!(out, "{label} {at:06x}: {}", hex.join(" "));
        }
    }
    out
}

/// A comparison key exercising every compared argument kind plus a payload
/// digest — the widest key shape the codec must round-trip.
fn exotic_key() -> ComparisonKey {
    ComparisonKey {
        no: Sysno::Open,
        args: vec![
            SyscallArg::Path("/etc/hosts".to_string()),
            SyscallArg::Flags(0o644),
            SyscallArg::Fd(3),
            SyscallArg::BufLen(4096),
            SyscallArg::Pointer(0xdead_beef_0000),
            SyscallArg::Int(-1),
        ],
        payload_digest: fnv1a(b"payload"),
        payload_len: 7,
    }
}

fn write_key(payload: &[u8]) -> ComparisonKey {
    SyscallRequest::new(Sysno::Write)
        .with_fd(1)
        .with_payload(payload)
        .comparison_key()
}

fn mprotect_key(len: i64) -> ComparisonKey {
    SyscallRequest::new(Sysno::Mprotect)
        .with_int(len)
        .comparison_key()
}

/// A clean (non-divergent) run touching every record type and every
/// class/outcome shape the recorder can emit.
fn clean_fixture() -> Vec<u8> {
    let rec = JournalRecorder::with_header(JournalHeader {
        version: JOURNAL_VERSION,
        variants: 2,
        threads: 2,
        shards: 2,
        batch: 4,
    });
    rec.record_enter(0, 0, 0, false);
    rec.record_class(ClassKind::Lockstep, 0);
    rec.record_arrival(0, 0, 0, 0, &write_key(b"hello"));
    rec.record_enter(1, 0, 0, false);
    rec.record_class(ClassKind::Batched, 1);
    rec.record_arrival(1, 0, 0, 0, &write_key(b"hello"));
    rec.record_class(ClassKind::Replicated, 0);
    rec.record_publish(0, 0, None, &SyscallOutcome::ok(5));
    rec.record_class(ClassKind::Ordered, 1);
    rec.record_publish(
        1,
        3,
        Some(42),
        &SyscallOutcome::ok_with_payload(4, b"data".to_vec()),
    );
    rec.record_publish(0, 4, None, &SyscallOutcome::err(Errno::Eagain));
    rec.record_class(ClassKind::BatchFlush, 0);
    rec.record_arrival(0, 1, 2 | DEFERRED_SEQ_BIT, 1, &exotic_key());
    rec.record_enter(0, 1, 1, true);
    rec.record_sync_op(1, 1);
    rec.finish()
}

/// The report the divergent fixture records (and replay must re-derive).
fn divergent_report() -> DivergenceReport {
    DivergenceReport {
        kind: DivergenceKind::SyscallMismatch {
            master: Sysno::Mprotect,
            variant: Sysno::Mprotect,
        },
        thread: 0,
        sequence: 1,
        variant: 1,
    }
}

/// A divergent run: a clean slot, then a mid-stream mismatch, then one
/// record of every remaining report kind so their wire layout is pinned too
/// (replay verifies only the first report, as the live monitor keeps only
/// the first).
fn divergent_fixture() -> Vec<u8> {
    let rec = JournalRecorder::with_header(JournalHeader {
        version: JOURNAL_VERSION,
        variants: 2,
        threads: 1,
        shards: 1,
        batch: 1,
    });
    rec.record_enter(0, 0, 0, false);
    rec.record_arrival(0, 0, 0, 0, &mprotect_key(4096));
    rec.record_enter(1, 0, 0, false);
    rec.record_arrival(1, 0, 0, 0, &mprotect_key(4096));
    rec.record_enter(0, 0, 0, false);
    rec.record_arrival(0, 0, 1, 0, &mprotect_key(4096));
    rec.record_enter(1, 0, 0, false);
    rec.record_arrival(1, 0, 1, 0, &mprotect_key(666));
    rec.record_diverge(&divergent_report());
    rec.record_diverge(&DivergenceReport {
        kind: DivergenceKind::RendezvousTimeout { arrived: vec![0] },
        thread: 0,
        sequence: 2,
        variant: 1,
    });
    rec.record_diverge(&DivergenceReport {
        kind: DivergenceKind::ReplicationTimeout {
            publisher: 0,
            arrived: vec![1],
        },
        thread: 0,
        sequence: 3,
        variant: 1,
    });
    rec.record_diverge(&DivergenceReport {
        kind: DivergenceKind::PolicyViolation {
            call: Sysno::Socket,
        },
        thread: 0,
        sequence: 4,
        variant: 0,
    });
    rec.finish()
}

#[test]
fn minimal_journal_bytes_are_pinned() {
    let rec = JournalRecorder::with_header(JournalHeader {
        version: JOURNAL_VERSION,
        variants: 2,
        threads: 1,
        shards: 1,
        batch: 1,
    });
    let actual: String = rec.finish().iter().map(|b| format!("{b:02x}")).collect();
    assert_eq!(
        actual, MINIMAL_JOURNAL_HEX,
        "the minimal journal's bytes moved: header or frame layout changed \
         without a JOURNAL_VERSION bump"
    );
    // The magic and header length are load-bearing parts of the literal.
    assert_eq!(&JOURNAL_MAGIC, b"MVJL");
    assert_eq!(JOURNAL_HEADER_LEN, 14);
    assert_eq!(JOURNAL_VERSION, 1);
}

#[test]
fn clean_fixture_matches_golden_file() {
    assert_golden("clean_run.journal", &clean_fixture());
}

#[test]
fn divergent_fixture_matches_golden_file() {
    assert_golden("divergent_run.journal", &divergent_fixture());
}

#[test]
fn golden_fixtures_round_trip_through_decode_and_encode() {
    for name in ["clean_run.journal", "divergent_run.journal"] {
        let bytes = std::fs::read(golden_path(name))
            .unwrap_or_else(|e| panic!("missing fixture {name}: {e}"));
        let journal = Journal::decode(&bytes)
            .unwrap_or_else(|e| panic!("checked-in fixture {name} no longer decodes: {e}"));
        assert_eq!(
            journal.encode(),
            bytes,
            "{name}: decode→encode is not the identity"
        );
    }
}

#[test]
fn divergent_fixture_replays_to_the_recorded_report() {
    let run = replay(&divergent_fixture()).expect("fixture must replay");
    assert_eq!(run.divergence, Some(divergent_report()));
    assert_eq!(run.stats.total_syscalls, 4);
    assert_eq!(run.stats.divergences, 4);
    assert_eq!(run.arrivals, 4);
    assert_eq!(run.slots, 2);
}

#[test]
fn unversioned_header_tweak_is_rejected() {
    // Bump the version field of an otherwise valid stream: decoding must
    // refuse it rather than guess at the format.
    let mut bytes = clean_fixture();
    bytes[4] = 0x2a;
    bytes[5] = 0;
    match Journal::decode(&bytes) {
        Err(mvee::core::JournalError::UnsupportedVersion(42)) => {}
        other => panic!("expected UnsupportedVersion(42), got {other:?}"),
    }
}
