//! The divergence journal as a RecPlay backend: the journal's globally
//! ordered arrival stream converts into a `RecPlayLog` whose offline replay
//! respects exactly the recorded per-slot order.
//!
//! This closes the loop the baselines crate documents: RecPlay records a
//! Lamport timestamp per sync op and replays by per-variable order; the
//! journal records a global arrival order per rendezvous slot.  Mapping
//! each arrival to a `(variant, slot)` op therefore yields a RecPlay log
//! that is consistent by construction — and whose replay serializes each
//! slot's deposits in the journal's order.

use std::sync::Arc;

use mvee::baselines::rr::RecPlayLog;
use mvee::core::journal::{Journal, JournalRecord, JournalRecorder};
use mvee::core::mvee::Mvee;
use mvee::core::JournalMode;
use mvee::kernel::syscall::{SyscallRequest, Sysno};
use mvee::sync_agent::agents::AgentKind;

/// Maps a journal arrival to a RecPlay op: the depositing variant is the
/// acting "thread", the rendezvous slot is the synchronization "variable".
fn slot_variable(thread: u32, seq: u64) -> u64 {
    // Slot threads are small (< 2^16) and sequences use the low bits plus
    // the deferred marker at bit 63; folding the thread into bits 40..56
    // keeps distinct slots distinct.
    (u64::from(thread) << 40) ^ seq
}

fn recorded_journal() -> Journal {
    let recorder = Arc::new(JournalRecorder::new());
    let mvee = Arc::new(
        Mvee::builder()
            .variants(2)
            .threads(2)
            .agent(AgentKind::Null)
            .journal(JournalMode::Record(Arc::clone(&recorder)))
            .lockstep_timeout(std::time::Duration::from_secs(10))
            .manual_clock(true)
            .build(),
    );
    let mut handles = Vec::new();
    for variant in 0..2 {
        for thread in 0..2 {
            let mvee = Arc::clone(&mvee);
            handles.push(std::thread::spawn(move || {
                let port = mvee.thread_port(variant, thread);
                for _ in 0..4 {
                    port.syscall(&SyscallRequest::new(Sysno::Brk).with_int(0))
                        .expect("clean run");
                }
            }));
        }
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(mvee.divergence().is_none());
    Journal::decode(&recorder.finish()).expect("journal decodes")
}

#[test]
fn journal_schedule_replays_as_a_recplay_log() {
    let journal = recorded_journal();
    let arrivals: Vec<(usize, u64)> = journal
        .records
        .iter()
        .filter_map(|r| match r {
            JournalRecord::Arrival {
                variant,
                thread,
                seq,
                ..
            } => Some((*variant as usize, slot_variable(*thread, *seq))),
            _ => None,
        })
        .collect();
    assert!(!arrivals.is_empty(), "the run must have recorded arrivals");

    let log = RecPlayLog::from_order(arrivals.iter().copied());
    assert_eq!(log.len(), arrivals.len());
    let replayed = log
        .replay()
        .expect("journal-derived log must be consistent");

    // The replay must serialize each slot's deposits in the journal's
    // recorded order: per variable, timestamps come out strictly
    // increasing, and the op multiset is untouched.
    let mut last: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for op in &replayed {
        if let Some(prev) = last.get(&op.variable) {
            assert!(
                op.timestamp > *prev,
                "slot {:#x} replayed out of order",
                op.variable
            );
        }
        last.insert(op.variable, op.timestamp);
    }
    let mut expected: Vec<(usize, u64)> = arrivals.clone();
    let mut actual: Vec<(usize, u64)> = replayed.iter().map(|o| (o.thread, o.variable)).collect();
    expected.sort_unstable();
    actual.sort_unstable();
    assert_eq!(expected, actual, "replay must preserve the op multiset");

    // Each variant deposits once per slot, so per-slot the log carries one
    // op per variant: every variable's clock ends at variant-count.
    for (&variable, &final_ts) in &last {
        assert_eq!(
            final_ts, 1,
            "slot {variable:#x} should see exactly two deposits (timestamps 0 and 1)"
        );
    }
}

#[test]
fn arrival_orders_are_strictly_increasing_in_file_order() {
    let journal = recorded_journal();
    let mut prev: Option<u64> = None;
    for record in &journal.records {
        if let JournalRecord::Arrival { order, .. } = record {
            if let Some(p) = prev {
                assert!(*order > p, "arrival order regressed: {order} after {p}");
            }
            prev = Some(*order);
        }
    }
    assert!(prev.is_some());
}
