//! Cross-crate integration tests: full MVEE runs over synthetic workloads,
//! divergence detection, diversity, and all three synchronization agents.

use mvee::core::policy::MonitoringPolicy;
use mvee::sync_agent::agents::AgentKind;
use mvee::variant::diversity::DiversityProfile;
use mvee::variant::program::{Action, Program, SyscallSpec, ThreadSpec};
use mvee::variant::runner::{run_mvee, run_native, RunConfig};
use mvee::workloads::catalog::BenchmarkSpec;

/// A producer/consumer program whose observable output depends on the thread
/// interleaving — the kind of program that diverges without an agent.
fn producer_consumer(items: u64) -> Program {
    let mut p = Program::new("producer-consumer").with_resources(1, 1, 1, 1);
    p.add_thread(ThreadSpec::new(vec![
        Action::Repeat {
            times: items,
            body: vec![Action::QueuePush {
                queue: 0,
                value: 11,
            }],
        },
        Action::BarrierWait {
            barrier: 0,
            participants: 3,
        },
        Action::Syscall(SyscallSpec::WriteOutput { len: 16, tag: 1 }),
    ]));
    for t in 0..2u64 {
        p.add_thread(ThreadSpec::new(vec![
            Action::BarrierWait {
                barrier: 0,
                participants: 3,
            },
            Action::Repeat {
                times: items / 2,
                body: vec![
                    Action::QueuePop {
                        queue: 0,
                        print: true,
                    },
                    Action::Compute(200 + t * 50),
                ],
            },
        ]));
    }
    p
}

#[test]
fn all_agents_keep_two_diversified_variants_in_lockstep() {
    for agent in AgentKind::replication_agents() {
        let config = RunConfig::new(2, agent).with_diversity(DiversityProfile::full(42));
        let report = run_mvee(&producer_consumer(12), &config);
        assert!(
            report.completed_cleanly(),
            "agent {:?} diverged: {:?}",
            agent,
            report.divergence
        );
        assert!(report.agent_stats.ops_recorded > 0);
        assert!(report.agent_stats.ops_replayed >= report.agent_stats.ops_recorded);
    }
}

#[test]
fn four_variants_replay_three_times_the_recorded_ops() {
    let report = run_mvee(
        &producer_consumer(8),
        &RunConfig::new(4, AgentKind::WallOfClocks),
    );
    assert!(report.completed_cleanly(), "{:?}", report.divergence);
    assert!(report.agent_stats.ops_replayed >= 3 * report.agent_stats.ops_recorded);
}

#[test]
fn catalog_benchmarks_run_cleanly_under_every_policy() {
    let spec = BenchmarkSpec::by_name("streamcluster").unwrap();
    let program = spec.paper_program(3e-6);
    for policy in [
        MonitoringPolicy::StrictLockstep,
        MonitoringPolicy::SecuritySensitiveOnly,
        MonitoringPolicy::NoComparison,
    ] {
        let config = RunConfig::new(2, AgentKind::WallOfClocks).with_policy(policy);
        let report = run_mvee(&program, &config);
        assert!(
            report.completed_cleanly(),
            "policy {:?} diverged: {:?}",
            policy,
            report.divergence
        );
    }
}

#[test]
fn mvee_slowdown_is_finite_and_positive() {
    let spec = BenchmarkSpec::by_name("fft").unwrap();
    let program = spec.paper_program(3e-6);
    let native = run_native(&program);
    let report = run_mvee(&program, &RunConfig::new(2, AgentKind::WallOfClocks));
    let slowdown = report.slowdown_vs(&native);
    assert!(slowdown.is_finite());
    assert!(slowdown > 0.0);
}

#[test]
fn a_compromised_variant_is_detected_as_divergence() {
    use mvee::kernel::syscall::{SyscallArg, SyscallRequest, Sysno};

    // Both variants run the same program, but the "compromised" path is an
    // explicit raw syscall that only makes sense for an attacker: variant
    // behaviour differs because the payload embeds a per-variant address, so
    // the write payloads mismatch at the lockstep rendezvous.
    let mvee = mvee::core::mvee::Mvee::builder()
        .variants(2)
        .threads(1)
        .policy(MonitoringPolicy::StrictLockstep)
        .lockstep_timeout(std::time::Duration::from_millis(500))
        .manual_clock(true)
        .build();

    let master = mvee.gateway(0);
    let slave = mvee.gateway(1);
    let slave_thread = std::thread::spawn(move || {
        slave.syscall(
            0,
            &SyscallRequest::new(Sysno::Mprotect)
                .with_arg(SyscallArg::Pointer(0x4000))
                .with_int(4096)
                .with_arg(SyscallArg::Flags(7)),
        )
    });
    let master_result = master.syscall(
        0,
        &SyscallRequest::new(Sysno::Write)
            .with_fd(1)
            .with_payload(b"normal output"),
    );
    let slave_result = slave_thread.join().unwrap();
    assert!(master_result.is_err() || slave_result.is_err());
    assert!(mvee.divergence().is_some());
    let report = mvee.divergence().unwrap();
    assert!(report.summary().contains("divergence"));
}

#[test]
fn uninstrumented_interaction_eventually_diverges_or_stays_benign_single_thread() {
    // With a single worker thread there is no interleaving to get wrong, so
    // even the null agent keeps two variants consistent — the boundary case
    // the paper notes for loosely-coupled programs.
    let mut p = Program::new("single").with_resources(1, 0, 0, 1);
    p.add_thread(ThreadSpec::new(vec![
        Action::Repeat {
            times: 50,
            body: vec![
                Action::LockAcquire(0),
                Action::AtomicAdd {
                    counter: 0,
                    amount: 1,
                },
                Action::LockRelease(0),
            ],
        },
        Action::PrintCounter(0),
    ]));
    let report = run_mvee(&p, &RunConfig::new(2, AgentKind::Null));
    assert!(report.completed_cleanly(), "{:?}", report.divergence);
}
