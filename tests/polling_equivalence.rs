//! Property tests: the fixed polling-pool transport is observably
//! equivalent to the per-port gateway workers and to the synchronous
//! ports.
//!
//! `Pollers::Pool(n)` replaces the dedicated gateway worker behind every
//! `AsyncThreadPort` with `n` poller threads that drain all ports' rings
//! through the lockstep table's non-blocking try/poll rendezvous.  For
//! randomized call plans across batch sizes ∈ {1, 8}, variant counts
//! ∈ {2, 8} and pool sizes ∈ {1, 2}, a pooled run must produce exactly the
//! same observable behaviour as a per-port run and a synchronous run: the
//! same per-call outcomes, the same clean/diverged verdict, the same
//! first-mismatch slot and blamed variant, and the same monitor
//! statistics.
//!
//! The deterministic companions pin the two hazards polling exists to
//! avoid or must not change:
//!
//! * a *cross-variant circular wait* — thread A of variant 0 and thread B
//!   of variant 1 arrive at different rendezvous first, so a poller that
//!   blocked inside either rendezvous would never serve the other port
//!   and the pool would deadlock; the non-blocking state machines must
//!   ride it out under a single poller;
//! * timeout *verdict identity* — a replication slave that times out must
//!   produce a byte-identical `ReplicationTimeout` report (same
//!   `publisher`, same `arrived` set, same blamed slot) whether the wait
//!   was a blocking `wait_outcome` or a poll-mode deadline.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use mvee::core::async_port::SubmitOutcome;
use mvee::core::config::{Pollers, Transport};
use mvee::core::monitor::MonitorStats;
use mvee::core::mvee::Mvee;
use mvee::core::DivergenceReport;
use mvee::kernel::syscall::{SyscallRequest, Sysno};
use mvee::sync_agent::agents::AgentKind;

/// The three transports under comparison.
#[derive(Clone, Copy, PartialEq)]
enum Path {
    /// Synchronous: every call blocks inline in the monitor pipeline.
    Sync,
    /// Async rings with a dedicated gateway worker per port.
    PerPort,
    /// Async rings drained by a fixed pool of `n` pollers.
    Pool(usize),
}

/// The call an op tag stands for — the same benign mix as the per-port
/// equivalence suite, so the three transports cover the deferrable,
/// replicated and unmonitored paths.
fn req_for(tag: u8) -> SyscallRequest {
    match tag % 5 {
        0 => SyscallRequest::new(Sysno::Brk).with_int(0),
        1 => SyscallRequest::new(Sysno::Mmap).with_int(8192),
        2 => SyscallRequest::new(Sysno::Mprotect).with_int(4096),
        3 => SyscallRequest::new(Sysno::Gettimeofday),
        _ => SyscallRequest::new(Sysno::SchedYield),
    }
}

fn transport_for(path: Path) -> Transport {
    match path {
        Path::Sync => Transport::Sync,
        Path::PerPort => Transport::AsyncRings {
            depth: 8,
            pollers: Pollers::PerPort,
        },
        Path::Pool(n) => Transport::AsyncRings {
            depth: 8,
            pollers: Pollers::Pool(n),
        },
    }
}

fn build_mvee(path: Path, variants: usize, threads: usize, batch: usize) -> Mvee {
    Mvee::builder()
        .variants(variants)
        .threads(threads.max(1))
        .agent(AgentKind::Null)
        .batch(batch)
        .transport(transport_for(path))
        .lockstep_timeout(Duration::from_secs(10))
        .manual_clock(true)
        .build()
}

/// Runs `plan` (one op-tag vector per logical thread, identical in every
/// variant) through a fresh MVEE on real OS threads, via the chosen
/// transport.  Returns the per-(variant, thread) success counts, the
/// monitor stats and the divergence report, if any.
fn run_plan(
    path: Path,
    variants: usize,
    batch: usize,
    plan: &[Vec<u8>],
) -> (Vec<u64>, MonitorStats, Option<DivergenceReport>) {
    let mvee = Arc::new(build_mvee(path, variants, plan.len(), batch));
    let plan = Arc::new(plan.to_vec());
    let mut handles = Vec::new();
    for variant in 0..variants {
        for thread in 0..plan.len() {
            let mvee = Arc::clone(&mvee);
            let plan = Arc::clone(&plan);
            handles.push(std::thread::spawn(move || {
                let mut ok = 0u64;
                match path {
                    Path::Sync => {
                        let port = mvee.thread_port(variant, thread);
                        for &tag in &plan[thread] {
                            if port.syscall(&req_for(tag)).is_ok() {
                                ok += 1;
                            }
                        }
                    }
                    Path::PerPort | Path::Pool(_) => {
                        let port = mvee.async_thread_port(variant, thread);
                        let mut tickets = Vec::new();
                        for &tag in &plan[thread] {
                            match port.submit(&req_for(tag)) {
                                SubmitOutcome::Completed(result) => {
                                    if result.is_ok() {
                                        ok += 1;
                                    }
                                }
                                SubmitOutcome::Ticket(ticket) => tickets.push(ticket),
                            }
                        }
                        for ticket in tickets {
                            if port.reap(ticket).is_ok() {
                                ok += 1;
                            }
                        }
                    }
                }
                ((variant, thread), ok)
            }));
        }
    }
    let mut collected: Vec<((usize, usize), u64)> = handles
        .into_iter()
        .map(|h| h.join().expect("plan thread panicked"))
        .collect();
    collected.sort_by_key(|(id, _)| *id);
    let oks = collected.into_iter().map(|(_, ok)| ok).collect();
    (oks, mvee.monitor_stats(), mvee.divergence())
}

proptest! {
    /// Clean plans: all three transports succeed on every call and agree
    /// on every monitor counter, with the batch size (∈ {1, 8}), the
    /// variant count (∈ {2, 8}) and the pool size (∈ {1, 2}) part of the
    /// generated case.
    #[test]
    fn pool_matches_per_port_and_sync_on_clean_plans(
        plan in proptest::collection::vec(proptest::collection::vec(0u8..5, 1..10), 1..3),
        variants_sel in 0usize..2,
        batch_sel in 0usize..2,
        pool_sel in 0usize..2,
    ) {
        let variants = [2usize, 8][variants_sel];
        let batch = [1usize, 8][batch_sel];
        let pool = [1usize, 2][pool_sel];
        let (sync_ok, sync_stats, sync_div) = run_plan(Path::Sync, variants, batch, &plan);
        let (pp_ok, pp_stats, pp_div) = run_plan(Path::PerPort, variants, batch, &plan);
        let (pool_ok, pool_stats, pool_div) =
            run_plan(Path::Pool(pool), variants, batch, &plan);
        prop_assert!(sync_div.is_none(), "sync transport diverged: {sync_div:?}");
        prop_assert!(pp_div.is_none(), "per-port transport diverged: {pp_div:?}");
        prop_assert!(pool_div.is_none(), "pooled transport diverged: {pool_div:?}");
        prop_assert_eq!(&sync_ok, &pp_ok,
            "sync vs per-port outcomes differ (variants={}, batch={})", variants, batch);
        prop_assert_eq!(&sync_ok, &pool_ok,
            "sync vs pool({}) outcomes differ (variants={}, batch={})", pool, variants, batch);
        prop_assert_eq!(&sync_stats, &pp_stats,
            "sync vs per-port stats differ (variants={}, batch={})", variants, batch);
        prop_assert_eq!(&sync_stats, &pool_stats,
            "sync vs pool({}) stats differ (variants={}, batch={})", pool, variants, batch);
    }
}

/// The injected-mismatch scenario across all three transports: one thread,
/// two variants, a mid-batch divergent mprotect followed by a synchronous
/// write that forces the flush.  All three must blame exactly the same
/// (thread, sequence, variant) — the pooled state machine must not smear
/// the first-mismatch slot.
#[test]
fn all_transports_report_identical_mismatch_verdicts() {
    let mprotect = |len: i64| SyscallRequest::new(Sysno::Mprotect).with_int(len);
    let write = || {
        SyscallRequest::new(Sysno::Write)
            .with_fd(1)
            .with_payload(b"flush")
    };
    for batch in [1usize, 8] {
        let mut reports = Vec::new();
        for path in [Path::Sync, Path::PerPort, Path::Pool(1), Path::Pool(2)] {
            let mvee = Arc::new(build_mvee(path, 2, 1, batch));
            let mut handles = Vec::new();
            for variant in 0..2 {
                let mvee = Arc::clone(&mvee);
                handles.push(std::thread::spawn(move || {
                    let lens: [i64; 3] = if variant == 0 {
                        [4096, 4096, 4096]
                    } else {
                        [4096, 666, 4096]
                    };
                    match path {
                        Path::Sync => {
                            let port = mvee.thread_port(variant, 0);
                            for len in lens {
                                port.syscall(&mprotect(len))?;
                            }
                            port.syscall(&write()).map(|_| ())
                        }
                        Path::PerPort | Path::Pool(_) => {
                            let port = mvee.async_thread_port(variant, 0);
                            for len in lens {
                                port.syscall(&mprotect(len))?;
                            }
                            port.syscall(&write()).map(|_| ())
                        }
                    }
                }));
            }
            let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert!(
                results.iter().any(|r| r.is_err()),
                "the mismatch must surface on at least one variant"
            );
            reports.push(mvee.divergence().expect("divergence report"));
        }
        let sync = &reports[0];
        assert_eq!(sync.sequence, 1, "must blame the exact mid-batch slot");
        assert_eq!(sync.variant, 1);
        for other in &reports[1..] {
            assert_eq!(
                sync.sequence, other.sequence,
                "batch={batch}: first-mismatch slot differs between transports"
            );
            assert_eq!(sync.thread, other.thread);
            assert_eq!(sync.variant, other.variant, "blamed variant differs");
            assert_eq!(
                std::mem::discriminant(&sync.kind),
                std::mem::discriminant(&other.kind),
                "divergence kind differs"
            );
        }
    }
}

/// A replication slave that times out must produce a byte-identical
/// `ReplicationTimeout` report on every transport: same `publisher`, same
/// `arrived` set, same (thread, sequence, variant).  Only variant 1 issues
/// the replicated `gettimeofday`; variant 0 — the publisher — never
/// arrives, so the slave's wait expires.  On the pooled path that wait is
/// a poll-mode deadline, not a parked condvar, and the verdict must not
/// change.
#[test]
fn replication_timeout_verdicts_are_field_identical() {
    let mut reports = Vec::new();
    for path in [Path::Sync, Path::PerPort, Path::Pool(1)] {
        let mvee = Arc::new(
            Mvee::builder()
                .variants(2)
                .threads(1)
                .agent(AgentKind::Null)
                .batch(1)
                .transport(transport_for(path))
                .lockstep_timeout(Duration::from_millis(200))
                .manual_clock(true)
                .build(),
        );
        let r = match path {
            Path::Sync => mvee
                .thread_port(1, 0)
                .syscall(&SyscallRequest::new(Sysno::Gettimeofday)),
            Path::PerPort | Path::Pool(_) => mvee
                .async_thread_port(1, 0)
                .syscall(&SyscallRequest::new(Sysno::Gettimeofday)),
        };
        assert!(r.is_err(), "the slave's replication wait must time out");
        reports.push(mvee.divergence().expect("divergence report"));
    }
    let sync = &reports[0];
    assert!(
        matches!(
            sync.kind,
            mvee::core::DivergenceKind::ReplicationTimeout { publisher: 0, .. }
        ),
        "expected a ReplicationTimeout blaming the master, got {:?}",
        sync.kind
    );
    for other in &reports[1..] {
        assert_eq!(
            sync, other,
            "replication-timeout reports must be field-identical across transports"
        );
    }
}

/// The cross-variant circular wait a single *blocking* drain could never
/// survive: under one poller, (v0, thread A) and (v1, thread B) issue
/// synchronous lockstep writes on *different* rendezvous first.  A poller
/// that blocked inside either rendezvous would never drain the other
/// port's ring, and the late arrivals could never be processed — a
/// deadlock.  The non-blocking state machines park both calls as pending,
/// keep serving, and complete all four once the partners arrive.
#[test]
fn single_poller_survives_cross_variant_circular_wait() {
    const THREAD_A: usize = 0;
    const THREAD_B: usize = 1;
    let mvee = Arc::new(
        Mvee::builder()
            .variants(2)
            .threads(2)
            .agent(AgentKind::Null)
            .batch(1)
            .transport(Transport::AsyncRings {
                depth: 8,
                pollers: Pollers::Pool(1),
            })
            .lockstep_timeout(Duration::from_secs(10))
            .manual_clock(true)
            .build(),
    );
    assert_eq!(
        mvee.poller_threads(),
        1,
        "the scenario needs a single poller"
    );
    // First wave: opposite corners of the (variant, thread) grid, each
    // blocking in a rendezvous the other cannot complete.
    let mut handles = Vec::new();
    for (variant, thread, tag) in [(0usize, THREAD_A, b"aa" as &[u8]), (1, THREAD_B, b"bb")] {
        let mvee = Arc::clone(&mvee);
        handles.push(std::thread::spawn(move || {
            let port = mvee.async_thread_port(variant, thread);
            port.syscall(
                &SyscallRequest::new(Sysno::Write)
                    .with_fd(1)
                    .with_payload(tag),
            )
        }));
    }
    // Let both first-wave calls reach their rendezvous and park as pending
    // inside the poller before the partners arrive.
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        !mvee.monitor().has_diverged(),
        "the pending rendezvous must not be misread as divergence"
    );
    // Second wave: the partners, in the opposite variant each.
    for (variant, thread, tag) in [(1usize, THREAD_A, b"aa" as &[u8]), (0, THREAD_B, b"bb")] {
        let mvee = Arc::clone(&mvee);
        handles.push(std::thread::spawn(move || {
            let port = mvee.async_thread_port(variant, thread);
            port.syscall(
                &SyscallRequest::new(Sysno::Write)
                    .with_fd(1)
                    .with_payload(tag),
            )
        }));
    }
    for h in handles {
        h.join()
            .expect("circular-wait thread hung or panicked")
            .expect("all four writes must succeed once the partners arrive");
    }
    assert!(mvee.divergence().is_none());
}
