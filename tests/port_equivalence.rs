//! Property tests: the [`ThreadPort`] gateway path is observably equivalent
//! to the legacy index-addressed `VariantGateway::syscall` path.
//!
//! For randomized per-thread call plans, batch sizes ∈ {1, 8} and all three
//! [`Placement`] policies, a run that drives every (variant, thread) through
//! its own `ThreadPort` must produce exactly the same observable behaviour
//! as a run that issues the same calls through the legacy
//! `gateway.syscall(thread, req)` convention: the same per-call outcomes,
//! the same clean/diverged verdict, the same first-mismatch slot and blamed
//! variant, and the same monitor statistics — even though real OS threads
//! race through the monitor in both runs.
//!
//! The deterministic companions pin the divergence-report equivalence for an
//! injected mid-batch mismatch and for a rendezvous timeout.

use std::sync::Arc;

use proptest::prelude::*;

use mvee::core::config::Placement;
use mvee::core::monitor::MonitorStats;
use mvee::core::mvee::Mvee;
use mvee::core::DivergenceReport;
use mvee::kernel::syscall::{SyscallRequest, Sysno};
use mvee::sync_agent::agents::AgentKind;

/// The two gateway paths under comparison.
#[derive(Clone, Copy, PartialEq)]
enum Path {
    /// Legacy: `gateway.syscall(thread, req)` on every call.
    Index,
    /// Redesigned: one `ThreadPort` per (variant, thread).
    Port,
}

/// The call an op tag stands for.  All tags are benign (identical across
/// variants); the divergence scenarios inject their mismatch explicitly.
fn req_for(tag: u8) -> SyscallRequest {
    match tag % 5 {
        // Deferrable compare-only address-space calls.
        0 => SyscallRequest::new(Sysno::Brk).with_int(0),
        1 => SyscallRequest::new(Sysno::Mmap).with_int(8192),
        2 => SyscallRequest::new(Sysno::Mprotect).with_int(4096),
        // A replicated call: a synchronous flush point.
        3 => SyscallRequest::new(Sysno::Gettimeofday),
        // Neither compared nor replicated nor ordered.
        _ => SyscallRequest::new(Sysno::SchedYield),
    }
}

fn build_mvee(variants: usize, threads: usize, batch: usize, placement: &Placement) -> Mvee {
    Mvee::builder()
        .variants(variants)
        .threads(threads.max(1))
        .agent(AgentKind::Null)
        .batch(batch)
        .placement(placement.clone())
        .shards(4)
        .lockstep_timeout(std::time::Duration::from_secs(10))
        .manual_clock(true)
        .build()
}

/// Runs `plan` (one op-tag vector per logical thread, identical in every
/// variant) through a fresh MVEE on real OS threads, via the chosen path.
/// Returns the per-(variant, thread) success counts, the monitor stats and
/// the divergence report, if any.
fn run_plan(
    path: Path,
    variants: usize,
    batch: usize,
    placement: &Placement,
    plan: &[Vec<u8>],
) -> (Vec<u64>, MonitorStats, Option<DivergenceReport>) {
    let mvee = Arc::new(build_mvee(variants, plan.len(), batch, placement));
    let plan = Arc::new(plan.to_vec());
    let mut handles = Vec::new();
    for variant in 0..variants {
        for thread in 0..plan.len() {
            let mvee = Arc::clone(&mvee);
            let plan = Arc::clone(&plan);
            handles.push(std::thread::spawn(move || {
                let mut ok = 0u64;
                match path {
                    Path::Index => {
                        let gateway = mvee.gateway(variant);
                        for &tag in &plan[thread] {
                            if gateway.syscall(thread, &req_for(tag)).is_ok() {
                                ok += 1;
                            }
                        }
                        // The port path flushes trailing deferred
                        // comparisons when the port drops; mirror that
                        // end-of-plan flush so the stats stay comparable.
                        let _ = mvee.monitor().flush_deferred(variant, thread);
                    }
                    Path::Port => {
                        let port = mvee.thread_port(variant, thread);
                        for &tag in &plan[thread] {
                            if port.syscall(&req_for(tag)).is_ok() {
                                ok += 1;
                            }
                        }
                    }
                }
                ((variant, thread), ok)
            }));
        }
    }
    let mut collected: Vec<((usize, usize), u64)> = handles
        .into_iter()
        .map(|h| h.join().expect("plan thread panicked"))
        .collect();
    collected.sort_by_key(|(id, _)| *id);
    let oks = collected.into_iter().map(|(_, ok)| ok).collect();
    (oks, mvee.monitor_stats(), mvee.divergence())
}

proptest! {
    /// Clean plans: both paths succeed on every call and agree on every
    /// monitor counter, with the batch size (∈ {1, 8}) and placement policy
    /// part of the generated case.
    #[test]
    fn port_path_matches_index_path_on_clean_plans(
        plan in proptest::collection::vec(proptest::collection::vec(0u8..5, 1..10), 1..3),
        variants in 2usize..4,
        batch_sel in 0usize..2,
        placement_sel in 0usize..3,
    ) {
        let batch = [1usize, 8][batch_sel];
        let placement = [
            Placement::RoundRobin,
            Placement::Grouped,
            Placement::pinned(vec![0, 2, 1]),
        ][placement_sel].clone();
        let (index_ok, index_stats, index_div) =
            run_plan(Path::Index, variants, batch, &placement, &plan);
        let (port_ok, port_stats, port_div) =
            run_plan(Path::Port, variants, batch, &placement, &plan);
        prop_assert!(index_div.is_none(), "index path diverged: {index_div:?}");
        prop_assert!(port_div.is_none(), "port path diverged: {port_div:?}");
        prop_assert_eq!(&index_ok, &port_ok,
            "per-thread outcomes differ (batch={}, {})", batch, placement.name());
        prop_assert_eq!(index_stats, port_stats,
            "monitor stats differ (batch={}, {})", batch, placement.name());
    }
}

/// The injected-mismatch scenario: one thread, two variants, a mid-batch
/// divergent mprotect followed by a synchronous write that forces the flush.
/// Both paths must blame exactly the same (thread, sequence, variant).
#[test]
fn port_and_index_paths_report_identical_mismatch_verdicts() {
    let mprotect = |len: i64| SyscallRequest::new(Sysno::Mprotect).with_int(len);
    let write = || {
        SyscallRequest::new(Sysno::Write)
            .with_fd(1)
            .with_payload(b"flush")
    };
    for batch in [1usize, 8] {
        for placement in [
            Placement::RoundRobin,
            Placement::Grouped,
            Placement::pinned(vec![1]),
        ] {
            let mut reports = Vec::new();
            for path in [Path::Index, Path::Port] {
                let mvee = Arc::new(build_mvee(2, 1, batch, &placement));
                let m = Arc::clone(&mvee);
                let slave = std::thread::spawn(move || match path {
                    Path::Index => {
                        let gw = m.gateway(1);
                        for len in [4096i64, 666, 4096] {
                            gw.syscall(0, &mprotect(len))?;
                        }
                        gw.syscall(0, &write())
                    }
                    Path::Port => {
                        let port = m.thread_port(1, 0);
                        for len in [4096i64, 666, 4096] {
                            port.syscall(&mprotect(len))?;
                        }
                        port.syscall(&write())
                    }
                });
                let master = {
                    let run = |issue: &dyn Fn(
                        &SyscallRequest,
                    )
                        -> Result<(), mvee::core::MonitorError>| {
                        for _ in 0..3 {
                            issue(&mprotect(4096))?;
                        }
                        issue(&write())
                    };
                    match path {
                        Path::Index => {
                            let gw = mvee.gateway(0);
                            run(&|req| gw.syscall(0, req).map(|_| ()))
                        }
                        Path::Port => {
                            let port = mvee.thread_port(0, 0);
                            run(&|req| port.syscall(req).map(|_| ()))
                        }
                    }
                };
                let slave = slave.join().unwrap();
                assert!(master.is_err() || slave.is_err());
                let report = mvee.divergence().expect("divergence report");
                reports.push(report);
            }
            let (index, port) = (&reports[0], &reports[1]);
            assert_eq!(
                index.sequence,
                port.sequence,
                "batch={batch} {}: first-mismatch slot differs",
                placement.name()
            );
            assert_eq!(index.thread, port.thread);
            assert_eq!(index.variant, port.variant, "blamed variant differs");
            assert_eq!(
                std::mem::discriminant(&index.kind),
                std::mem::discriminant(&port.kind),
                "divergence kind differs"
            );
            assert_eq!(index.sequence, 1, "must blame the exact mid-batch slot");
            assert_eq!(index.variant, 1);
        }
    }
}

/// The rendezvous-timeout scenario: only the master arrives at a compared
/// call.  Both paths must report the same timeout verdict.
#[test]
fn port_and_index_paths_report_identical_timeout_verdicts() {
    let open = SyscallRequest::new(Sysno::Open).with_path("/missing");
    let mut reports = Vec::new();
    for path in [Path::Index, Path::Port] {
        let mvee = Mvee::builder()
            .variants(2)
            .threads(1)
            .agent(AgentKind::Null)
            .lockstep_timeout(std::time::Duration::from_millis(150))
            .manual_clock(true)
            .build();
        let result = match path {
            Path::Index => mvee.gateway(0).syscall(0, &open),
            Path::Port => mvee.thread_port(0, 0).syscall(&open),
        };
        assert!(result.is_err());
        reports.push(mvee.divergence().expect("divergence report"));
    }
    let (index, port) = (&reports[0], &reports[1]);
    assert_eq!(index.sequence, port.sequence);
    assert_eq!(index.thread, port.thread);
    assert_eq!(index.variant, port.variant);
    assert_eq!(
        std::mem::discriminant(&index.kind),
        std::mem::discriminant(&port.kind)
    );
}

/// The `Send` half of the port's threading contract, checked at compile
/// time from outside the defining crate (the `!Sync` half is a
/// `compile_fail` doctest on `mvee_core::port`).
#[test]
fn thread_port_is_send_across_crates() {
    fn assert_send<T: Send>() {}
    assert_send::<mvee::core::port::ThreadPort>();
}
