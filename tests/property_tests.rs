//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use mvee::analysis::corpus::CorpusSpec;
use mvee::analysis::stage2::identify_sync_ops_syntactic;
use mvee::baselines::rr::RecPlayRecorder;
use mvee::kernel::fd::{FdObject, FdTable};
use mvee::kernel::syscall::{SyscallArg, SyscallRequest, Sysno};
use mvee::sync_agent::clockwall::ClockWall;
use mvee::sync_agent::context::{AgentConfig, SyncContext, VariantRole};
use mvee::sync_agent::ring::{PushOutcome, RecordRing, SyncRecord};
use mvee::sync_agent::{SyncAgent, WallOfClocksAgent};

proptest! {
    /// FD allocation always returns the lowest free descriptor, so replaying
    /// the same open/close sequence always yields the same descriptors —
    /// the determinism the monitor's ordering relies on.
    #[test]
    fn fd_allocation_is_deterministic(ops in proptest::collection::vec(0u8..4, 1..60)) {
        let run = |ops: &[u8]| {
            let mut table = FdTable::with_standard_streams();
            let mut log = Vec::new();
            for (i, op) in ops.iter().enumerate() {
                match op {
                    0..=2 => {
                        if let Ok(fd) = table.allocate(FdObject::File { inode: i as u64, offset: 0, writable: false }) {
                            log.push(fd);
                        }
                    }
                    _ => {
                        // Close the smallest non-standard descriptor, if any.
                        let target = table.iter().map(|(fd, _)| fd).find(|fd| *fd >= 3);
                        if let Some(fd) = target {
                            table.close(fd).unwrap();
                            log.push(-fd);
                        }
                    }
                }
            }
            log
        };
        prop_assert_eq!(run(&ops), run(&ops));
    }

    /// The comparison key never depends on pointer argument values, and two
    /// requests that differ in any compared argument have different keys.
    #[test]
    fn comparison_keys_ignore_pointers_only(fd in 0i32..64, ptr_a in 0u64..u64::MAX, ptr_b in 0u64..u64::MAX, payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let a = SyscallRequest::new(Sysno::Write)
            .with_fd(fd)
            .with_arg(SyscallArg::Pointer(ptr_a))
            .with_payload(&payload);
        let b = SyscallRequest::new(Sysno::Write)
            .with_fd(fd)
            .with_arg(SyscallArg::Pointer(ptr_b))
            .with_payload(&payload);
        prop_assert_eq!(a.comparison_key(), b.comparison_key());

        let c = SyscallRequest::new(Sysno::Write)
            .with_fd(fd + 1)
            .with_arg(SyscallArg::Pointer(ptr_a))
            .with_payload(&payload);
        prop_assert_ne!(a.comparison_key(), c.comparison_key());
    }

    /// Ring buffers deliver records FIFO per position and never lose records
    /// as long as readers keep consuming.
    #[test]
    fn record_ring_is_fifo(records in proptest::collection::vec((0u32..8, any::<u64>()), 1..200)) {
        let ring = RecordRing::new(64, 1);
        let mut read_pos = 0u64;
        let mut delivered = Vec::new();
        for (thread, addr) in &records {
            loop {
                match ring.try_push(SyncRecord::simple(*thread, *addr)) {
                    PushOutcome::Stored(_) => break,
                    PushOutcome::Full => {
                        let rec = ring.get(read_pos).expect("published");
                        delivered.push((rec.thread, rec.addr));
                        ring.advance_reader(0);
                        read_pos += 1;
                    }
                }
            }
        }
        while (read_pos as usize) < records.len() {
            let rec = ring.get(read_pos).expect("published");
            delivered.push((rec.thread, rec.addr));
            ring.advance_reader(0);
            read_pos += 1;
        }
        prop_assert_eq!(delivered, records);
    }

    /// The clock wall maps any address to a valid clock, deterministically,
    /// and 8-byte-aligned pairs always share a clock.
    #[test]
    fn clock_wall_assignment_is_total_and_deterministic(addr in any::<u64>(), clocks in 1usize..700) {
        let wall = ClockWall::new(clocks);
        let c1 = wall.clock_for(addr);
        let c2 = wall.clock_for(addr);
        prop_assert_eq!(c1, c2);
        prop_assert!(c1 < clocks);
        prop_assert_eq!(wall.clock_for(addr & !7), c1);
    }

    /// Wall-of-clocks record/replay preserves the per-thread op count for any
    /// single-threaded op sequence (the positional correspondence invariant).
    #[test]
    fn woc_replay_preserves_op_counts(addrs in proptest::collection::vec(0u64..0x1_0000, 1..120)) {
        let config = AgentConfig::default()
            .with_variants(2)
            .with_threads(1)
            .with_buffer_capacity(256);
        let agent = WallOfClocksAgent::new(config);
        let master = SyncContext::new(VariantRole::Master, 0);
        let slave = SyncContext::new(VariantRole::Slave { index: 0 }, 0);
        for addr in &addrs {
            // Interleave recording and replaying so the bounded buffer never
            // fills: the slave replays each op right after it is recorded.
            agent.before_sync_op(&master, *addr);
            agent.after_sync_op(&master, *addr);
            agent.before_sync_op(&slave, *addr);
            agent.after_sync_op(&slave, *addr);
        }
        let stats = agent.stats();
        prop_assert_eq!(stats.ops_recorded, addrs.len() as u64);
        prop_assert_eq!(stats.ops_replayed, addrs.len() as u64);
    }

    /// RecPlay logs always replay successfully and preserve per-variable
    /// timestamp order.
    #[test]
    fn recplay_logs_always_replay(ops in proptest::collection::vec((0usize..4, 0u64..6), 0..150)) {
        let mut rec = RecPlayRecorder::new();
        for (thread, var) in &ops {
            rec.record(*thread, *var);
        }
        let log = rec.finish();
        let replay = log.replay();
        prop_assert!(replay.is_some());
        let replay = replay.unwrap();
        prop_assert_eq!(replay.len(), ops.len());
        let mut last: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        for op in replay {
            if let Some(prev) = last.get(&op.variable) {
                prop_assert!(op.timestamp > *prev);
            }
            last.insert(op.variable, op.timestamp);
        }
    }

    /// The stage-1/stage-2 classification finds exactly the planted sync ops
    /// in a generated corpus, for any corpus size.
    #[test]
    fn corpus_classification_is_exact(i in 0usize..40, ii in 0usize..40, iii in 0usize..20) {
        // Type (iii) stores target type (i) variables, so they need i >= 1.
        prop_assume!(iii == 0 || i >= 1);
        let spec = CorpusSpec { name: "prop", is_library: false, type_i: i, type_ii: ii, type_iii: iii };
        let module = mvee::analysis::corpus::generate_module(&spec);
        let report = identify_sync_ops_syntactic(&module);
        prop_assert_eq!(report.counts(), (i, ii, iii));
    }
}
