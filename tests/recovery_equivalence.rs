//! Property tests: quarantine recovery is observably equivalent to never
//! having launched the dead variant.
//!
//! Under [`RecoveryPolicy::Quarantine`] a proven divergence drops only the
//! blamed variant: the lockstep table removes it from every expected-arrival
//! set, in-flight survivor waits re-resolve against the reduced quorum, and
//! the run keeps serving.  The acceptance bar is *equivalence*: for
//! randomized call plans across batch sizes ∈ {1, 8}, variant counts
//! ∈ {3, 8} and transports {sync, async-pool}, killing one variant mid-run
//! must leave the survivors' per-call outcomes (return values and payloads)
//! and the run verdict field-identical to a control run launched without
//! that variant — plus exactly one quarantine, zero respawns and a non-zero
//! degraded-call count on the degraded run.
//!
//! The deterministic companions pin the rest of the recovery story:
//!
//! * *master failover* — killing variant 0 hands replication mastership to
//!   the lowest surviving index; replicated calls keep succeeding;
//! * *respawn* — a quarantined variant restores from its last agreed
//!   snapshot, replays the journal suffix, rejoins at a quiescent batch
//!   boundary, and subsequent calls compare across the full quorum again
//!   (proven by making the respawned variant diverge a second time);
//! * *quorum floor* — with only `min_quorum` live variants, the next
//!   divergence poisons the run instead of quarantining below the floor.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use mvee::core::config::{RecoveryPolicy, Transport};
use mvee::core::journal::{JournalMode, JournalRecorder};
use mvee::core::monitor::MonitorError;
use mvee::core::mvee::Mvee;
use mvee::kernel::syscall::{SyscallOutcome, SyscallRequest, Sysno};
use mvee::sync_agent::agents::AgentKind;

/// The two transports under comparison: blocking ports and async rings
/// drained by a fixed poller pool (the two ends of the transport spectrum;
/// `PerPort` sits between them and shares the pool's rendezvous plumbing).
#[derive(Clone, Copy, PartialEq)]
enum Path {
    Sync,
    Pool(usize),
}

fn path_label(path: Path) -> &'static str {
    match path {
        Path::Sync => "sync",
        Path::Pool(_) => "async-pool",
    }
}

fn transport_for(path: Path) -> Transport {
    match path {
        Path::Sync => Transport::Sync,
        Path::Pool(n) => Transport::async_pool(n),
    }
}

/// The benign call mix: deferrable address-space calls, a replicated
/// `gettimeofday` (a flush point under batching) and an unmonitored yield.
fn req_for(tag: u8) -> SyscallRequest {
    match tag % 5 {
        0 => SyscallRequest::new(Sysno::Brk).with_int(0),
        1 => SyscallRequest::new(Sysno::Mmap).with_int(8192),
        2 => SyscallRequest::new(Sysno::Mprotect).with_int(4096),
        3 => SyscallRequest::new(Sysno::Gettimeofday),
        _ => SyscallRequest::new(Sysno::SchedYield),
    }
}

/// The victim's divergent twin of tag 2: same syscall, different length —
/// the canonical staged mismatch every equivalence suite uses.
fn poison_req() -> SyscallRequest {
    SyscallRequest::new(Sysno::Mprotect).with_int(666)
}

fn build(path: Path, variants: usize, threads: usize, batch: usize) -> Mvee {
    Mvee::builder()
        .variants(variants)
        .threads(threads.max(1))
        .agent(AgentKind::Null)
        .batch(batch)
        .transport(transport_for(path))
        .recovery(RecoveryPolicy::quarantine())
        .lockstep_timeout(Duration::from_secs(10))
        .manual_clock(true)
        .build()
}

/// What one (variant, thread) observed: the per-call results, in program
/// order.  `Err(())` is a refused call (the caller's variant is dead).
type Observed = Vec<Result<(i64, Vec<u8>), ()>>;

fn observe(r: Result<SyscallOutcome, MonitorError>) -> Result<(i64, Vec<u8>), ()> {
    match r {
        Ok(out) => Ok((out.result.unwrap_or(i64::MIN), out.payload)),
        Err(_) => Err(()),
    }
}

/// Runs `plan` (one tag vector per logical thread, identical in every
/// variant) on real OS threads.  When `victim` is `Some((v, kill_at))`,
/// variant `v`'s thread 0 issues the divergent twin at call index `kill_at`
/// instead of the plan's call and stops at its first error, like a variant
/// whose process died.  Every thread's plan is given two trailing
/// replicated calls: the first flushes any deferred tail (resolving the
/// staged mismatch at the latest there), the second is guaranteed to be
/// counted *after* the quarantine landed — the degraded-call witness.
///
/// Returns the survivors' observations keyed by (variant, thread), in index
/// order, followed by the run's end state.
fn run_plan(
    path: Path,
    variants: usize,
    batch: usize,
    plan: &[Vec<u8>],
    victim: Option<(usize, usize)>,
) -> (Vec<Observed>, Arc<Mvee>) {
    let mvee = Arc::new(build(path, variants, plan.len(), batch));
    let mut full_plan: Vec<Vec<u8>> = plan.to_vec();
    for thread_plan in &mut full_plan {
        thread_plan.push(3);
        thread_plan.push(3);
    }
    let full_plan = Arc::new(full_plan);
    let mut handles = Vec::new();
    for variant in 0..variants {
        for thread in 0..full_plan.len() {
            let mvee = Arc::clone(&mvee);
            let full_plan = Arc::clone(&full_plan);
            handles.push(std::thread::spawn(move || {
                let is_victim_thread = victim.is_some_and(|(v, _)| v == variant) && thread == 0;
                let drive = |issue: &dyn Fn(
                    &SyscallRequest,
                )
                    -> Result<SyscallOutcome, MonitorError>|
                 -> Observed {
                    let mut seen = Vec::new();
                    for (i, &tag) in full_plan[thread].iter().enumerate() {
                        let req = if is_victim_thread && victim.map(|(_, at)| at) == Some(i) {
                            poison_req()
                        } else {
                            req_for(tag)
                        };
                        let observed = observe(issue(&req));
                        let died = observed.is_err();
                        seen.push(observed);
                        if is_victim_thread && died {
                            break; // the dead variant stops issuing
                        }
                    }
                    seen
                };
                let seen = match path {
                    Path::Sync => {
                        let port = mvee.thread_port(variant, thread);
                        drive(&|req| port.syscall(req))
                    }
                    Path::Pool(_) => {
                        let port = mvee.async_thread_port(variant, thread);
                        drive(&|req| port.syscall(req))
                    }
                };
                ((variant, thread), seen)
            }));
        }
    }
    let mut collected: Vec<((usize, usize), Observed)> = handles
        .into_iter()
        .map(|h| h.join().expect("plan thread panicked"))
        .collect();
    collected.sort_by_key(|(id, _)| *id);
    let survivors = collected
        .into_iter()
        .filter(|((v, _), _)| victim.is_none_or(|(dead, _)| *v != dead))
        .map(|(_, seen)| seen)
        .collect();
    (survivors, mvee)
}

proptest! {
    /// The acceptance property: killing the highest-indexed variant at a
    /// random mid-run call leaves the survivors field-identical to a
    /// control run launched without that variant — same per-call return
    /// values and payloads, same clean verdict — while the degraded run
    /// alone reports exactly one quarantine and a non-zero degraded-call
    /// count.
    #[test]
    fn survivors_match_a_run_launched_without_the_victim(
        plan in proptest::collection::vec(proptest::collection::vec(0u8..5, 2..8), 1..3),
        kill_pct in 0usize..100,
        variants_sel in 0usize..2,
        batch_sel in 0usize..2,
        path_sel in 0usize..2,
    ) {
        let mut plan = plan;
        let variants = [3usize, 8][variants_sel];
        let batch = [1usize, 8][batch_sel];
        let path = [Path::Sync, Path::Pool(2)][path_sel];
        let victim = variants - 1;
        let kill_at = (plan[0].len() * kill_pct / 100).min(plan[0].len() - 1);
        // The kill slot must hold a deferrable call in every variant, so
        // the victim's twin mismatches on the *argument*, not on the call
        // stream shape (a shape change would be a different scenario: a
        // rendezvous timeout, pinned by the fault suites instead).
        plan[0][kill_at] = 2;
        // Mmap return values depend on the cross-thread interleaving of
        // allocations on the master's kernel — nondeterministic between
        // *any* two runs, degraded or not — so multi-thread plans swap it
        // for the brk query, which is deferrable too but scheduling-proof.
        if plan.len() > 1 {
            for thread_plan in &mut plan {
                for tag in thread_plan.iter_mut() {
                    if *tag == 1 {
                        *tag = 0;
                    }
                }
            }
        }

        let (degraded, degraded_mvee) =
            run_plan(path, variants, batch, &plan, Some((victim, kill_at)));
        let (control, control_mvee) = run_plan(path, variants - 1, batch, &plan, None);

        prop_assert_eq!(
            degraded_mvee.divergence(), None,
            "quarantine must keep serving, not tear down"
        );
        prop_assert_eq!(control_mvee.divergence(), None);
        prop_assert_eq!(degraded_mvee.quarantined_variants(), vec![victim]);
        prop_assert!(control_mvee.quarantined_variants().is_empty());
        prop_assert_eq!(
            &degraded, &control,
            "survivors' outcomes differ from the victim-less control \
             (variants={}, batch={}, kill_at={})", variants, batch, kill_at
        );

        let stats = degraded_mvee.monitor_stats();
        prop_assert_eq!(stats.quarantines, 1);
        prop_assert_eq!(stats.respawns, 0);
        prop_assert!(
            stats.degraded_calls > 0,
            "every thread's final call runs after the quarantine landed"
        );
        let control_stats = control_mvee.monitor_stats();
        prop_assert_eq!(control_stats.quarantines, 0);
        prop_assert_eq!(control_stats.degraded_calls, 0);

        // Nothing leaked a rendezvous registration.
        prop_assert_eq!(degraded_mvee.monitor().live_slots(), 0);
        prop_assert_eq!(control_mvee.monitor().live_slots(), 0);
    }
}

/// Killing the *master* (variant 0) must fail replication over to the
/// lowest surviving index: the survivors' replicated calls keep succeeding
/// and the first quarantine report blames variant 0.
#[test]
fn killed_master_fails_over_and_replicated_calls_keep_succeeding() {
    for path in [Path::Sync, Path::Pool(1)] {
        let plan = vec![vec![2, 2, 0, 3, 1, 3, 2, 3]];
        let (survivors, mvee) = run_plan(path, 3, 1, &plan, Some((0, 1)));
        assert_eq!(mvee.divergence(), None, "the run must keep serving");
        assert_eq!(mvee.quarantined_variants(), vec![0]);
        assert_eq!(
            mvee.monitor().master_variant(),
            1,
            "replication mastership fails over to the lowest live index"
        );
        let report = &mvee.quarantine_reports()[0];
        assert_eq!(report.variant, 0, "the first report blames the master");
        for (i, seen) in survivors.iter().enumerate() {
            assert!(
                seen.iter().all(Result::is_ok),
                "survivor {} lost a call after the master died: {seen:?}",
                i + 1
            );
        }
    }
}

/// The full snapshot → quarantine → respawn round trip, on both
/// transports: a journaled, snapshotting run kills variant 2, respawns it
/// from the last agreed snapshot at a quiescent boundary, and the rejoined
/// quorum (a) serves further calls cleanly across *all* variants and
/// (b) catches the respawned variant's *second* divergence — proof the
/// full quorum is being compared again, not just the old survivors.
#[test]
fn respawned_variant_rejoins_and_compares_across_the_full_quorum() {
    for path in [Path::Sync, Path::Pool(2)] {
        let recorder = Arc::new(JournalRecorder::new());
        let mvee = Arc::new(
            Mvee::builder()
                .variants(3)
                .threads(1)
                .agent(AgentKind::Null)
                .batch(1)
                .transport(transport_for(path))
                .recovery(RecoveryPolicy::quarantine())
                .journal(JournalMode::Record(Arc::clone(&recorder)))
                .snapshot_every(2)
                .lockstep_timeout(Duration::from_secs(10))
                .manual_clock(true)
                .build(),
        );

        // One phase = every variant runs four sync ops (crossing the 2-op
        // snapshot interval), one deferrable call (the staged one, when
        // given) and one replicated call, on its own OS thread.  Returns
        // whether each variant's calls all succeeded.
        let phase = |mvee: &Arc<Mvee>, staged: Vec<Option<SyscallRequest>>| -> Vec<bool> {
            let mut handles = Vec::new();
            for (variant, poison) in staged.into_iter().enumerate() {
                let mvee = Arc::clone(mvee);
                handles.push(std::thread::spawn(move || {
                    let req = poison.unwrap_or_else(|| req_for(2));
                    let ok = match path {
                        Path::Sync => {
                            let port = mvee.thread_port(variant, 0);
                            for _ in 0..4 {
                                port.sync_op(0x1000, || ());
                            }
                            port.syscall(&req).is_ok() && port.syscall(&req_for(3)).is_ok()
                        }
                        Path::Pool(_) => {
                            let port = mvee.async_thread_port(variant, 0);
                            for _ in 0..4 {
                                port.sync_op(0x1000, || ());
                            }
                            port.syscall(&req).is_ok() && port.syscall(&req_for(3)).is_ok()
                        }
                    };
                    (variant, ok)
                }));
            }
            let mut done: Vec<(usize, bool)> =
                handles.into_iter().map(|h| h.join().unwrap()).collect();
            done.sort_by_key(|(v, _)| *v);
            done.into_iter().map(|(_, ok)| ok).collect()
        };

        // Phase A: an agreed prefix, so every variant has an installed
        // snapshot before anything goes wrong.
        let clean = phase(&mvee, vec![None, None, None]);
        assert_eq!(clean, vec![true; 3], "{}: agreed prefix", path_label(path));
        assert!(
            mvee.latest_snapshot(2).is_some(),
            "{}: four sync ops must cross the 2-op snapshot interval",
            path_label(path)
        );

        // Phase B: variant 2 diverges and is quarantined; survivors serve.
        let degraded = phase(&mvee, vec![None, None, Some(poison_req())]);
        assert_eq!(
            degraded,
            vec![true, true, false],
            "{}: only the victim's calls fail",
            path_label(path)
        );
        assert_eq!(mvee.quarantined_variants(), vec![2]);
        assert_eq!(mvee.divergence(), None);

        // Quiescent boundary: all worker threads joined.  Respawn.
        let report = mvee.respawn_variant(2).expect("respawn must succeed");
        assert_eq!(report.variant, 2);
        assert!(
            report.restored_sync_ops.is_some(),
            "{}: a snapshot was available to restore from",
            path_label(path)
        );
        assert!(
            report.replayed_records > 0,
            "{}: the journal suffix past the snapshot is the catch-up work",
            path_label(path)
        );
        assert!(mvee.quarantined_variants().is_empty());
        assert_eq!(mvee.monitor_stats().respawns, 1);

        // Phase C: the full quorum serves again...
        let rejoined = phase(&mvee, vec![None, None, None]);
        assert_eq!(
            rejoined,
            vec![true; 3],
            "{}: the respawned variant must compare cleanly",
            path_label(path)
        );

        // ...and a second divergence by the respawned variant is caught —
        // the quorum really does include it again.
        let again = phase(&mvee, vec![None, None, Some(poison_req())]);
        assert_eq!(again, vec![true, true, false], "{}", path_label(path));
        assert_eq!(mvee.quarantined_variants(), vec![2]);
        assert_eq!(mvee.monitor_stats().quarantines, 2);
        assert_eq!(mvee.divergence(), None);
        assert_eq!(mvee.monitor().live_slots(), 0);
    }
}

/// The quorum floor: with `min_quorum = 2` and two live variants left, the
/// next divergence must poison the run instead of quarantining below the
/// floor — a 1-variant MVEE compares nothing.
#[test]
fn divergence_at_the_quorum_floor_poisons_instead_of_quarantining() {
    let mvee = Arc::new(build(Path::Sync, 3, 1, 1));
    let kill = |mvee: &Arc<Mvee>, victim: usize| {
        let mut handles = Vec::new();
        for variant in 0..3 {
            if mvee.quarantined_variants().contains(&variant) {
                continue;
            }
            let mvee = Arc::clone(mvee);
            handles.push(std::thread::spawn(move || {
                let port = mvee.thread_port(variant, 0);
                let req = if variant == victim {
                    poison_req()
                } else {
                    req_for(2)
                };
                let _ = port.syscall(&req);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    };
    // First divergence: variant 2 is quarantined (3 live > floor 2).
    kill(&mvee, 2);
    assert_eq!(mvee.quarantined_variants(), vec![2]);
    assert_eq!(mvee.divergence(), None, "first kill degrades, not ends");
    // Second divergence: only 2 live variants — at the floor, so the run
    // poisons and the verdict surfaces.
    kill(&mvee, 1);
    assert!(
        mvee.divergence().is_some(),
        "at the quorum floor the fallback is the paper's detect-and-kill"
    );
    assert_eq!(mvee.monitor_stats().quarantines, 1);
}
