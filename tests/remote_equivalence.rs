//! Property tests: a distributed MVEE (leader/follower over a replication
//! channel) is observably equivalent to the in-proc synchronous MVEE.
//!
//! Under `Transport::Remote`, variant 0 executes behind a `LeaderPort` that
//! streams CRC-framed monitoring records to the follower's pump, which
//! drives the shared rendezvous machinery on its behalf.  For randomized
//! call plans across batch sizes ∈ {1, 8} and variant counts ∈ {2, 8}, a
//! remote run must produce exactly the same observable behaviour as an
//! in-proc run:
//!
//! * the same per-call success counts on every (variant, thread);
//! * the same monitor statistics after the remote barrier (quiescence);
//! * on injected mismatches, a field-identical `DivergenceReport` — same
//!   first-mismatch slot, same blamed thread/sequence/variant, same kind;
//! * on replication timeouts, byte-identical attribution.
//!
//! The socket flavours (Unix socketpair, TCP loopback) run the same frames
//! through a real kernel byte stream — partial reads, coalesced writes —
//! and must change nothing.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use mvee::core::config::{RemoteChannel, Transport};
use mvee::core::monitor::MonitorStats;
use mvee::core::mvee::Mvee;
use mvee::core::DivergenceReport;
use mvee::kernel::syscall::{SyscallRequest, Sysno};
use mvee::sync_agent::agents::AgentKind;

/// The transports under comparison.
#[derive(Clone, Copy, PartialEq)]
enum Path {
    /// In-proc: every variant blocks inline in the monitor pipeline.
    Sync,
    /// Distributed: variant 0 is a remote leader over the given channel.
    Remote(RemoteChannel),
}

/// The call an op tag stands for — the same benign mix as the transport
/// equivalence suites, covering the deferrable, replicated, ordered and
/// unmonitored paths.
fn req_for(tag: u8) -> SyscallRequest {
    match tag % 5 {
        0 => SyscallRequest::new(Sysno::Brk).with_int(0),
        1 => SyscallRequest::new(Sysno::Mmap).with_int(8192),
        2 => SyscallRequest::new(Sysno::Mprotect).with_int(4096),
        3 => SyscallRequest::new(Sysno::Gettimeofday),
        _ => SyscallRequest::new(Sysno::SchedYield),
    }
}

fn build_mvee(path: Path, variants: usize, threads: usize, batch: usize) -> Mvee {
    let transport = match path {
        Path::Sync => Transport::Sync,
        Path::Remote(channel) => Transport::Remote { channel },
    };
    Mvee::builder()
        .variants(variants)
        .threads(threads.max(1))
        .agent(AgentKind::Null)
        .batch(batch)
        .transport(transport)
        .lockstep_timeout(Duration::from_secs(10))
        .manual_clock(true)
        .build()
}

/// Runs `plan` (one op-tag vector per logical thread, identical in every
/// variant) through a fresh MVEE on real OS threads.  Variant 0 goes
/// through the leader port on remote paths and the in-proc port otherwise;
/// remote runs quiesce through the barrier before stats are read.
fn run_plan(
    path: Path,
    variants: usize,
    batch: usize,
    plan: &[Vec<u8>],
) -> (Vec<u64>, MonitorStats, Option<DivergenceReport>) {
    let mvee = Arc::new(build_mvee(path, variants, plan.len(), batch));
    let plan = Arc::new(plan.to_vec());
    let mut handles = Vec::new();
    for variant in 0..variants {
        for thread in 0..plan.len() {
            let mvee = Arc::clone(&mvee);
            let plan = Arc::clone(&plan);
            handles.push(std::thread::spawn(move || {
                let mut ok = 0u64;
                if path != Path::Sync && variant == 0 {
                    let port = mvee.leader_port(thread);
                    for &tag in &plan[thread] {
                        if port.syscall(&req_for(tag)).is_ok() {
                            ok += 1;
                        }
                    }
                } else {
                    let port = mvee.thread_port(variant, thread);
                    for &tag in &plan[thread] {
                        if port.syscall(&req_for(tag)).is_ok() {
                            ok += 1;
                        }
                    }
                }
                ((variant, thread), ok)
            }));
        }
    }
    let mut collected: Vec<((usize, usize), u64)> = handles
        .into_iter()
        .map(|h| h.join().expect("plan thread panicked"))
        .collect();
    collected.sort_by_key(|(id, _)| *id);
    let oks = collected.into_iter().map(|(_, ok)| ok).collect();
    if path != Path::Sync {
        mvee.remote_barrier()
            .expect("the replication channel must stay healthy on clean plans");
        assert!(
            mvee.remote_fault().is_none(),
            "no peer failure on a clean plan"
        );
    }
    (oks, mvee.monitor_stats(), mvee.divergence())
}

proptest! {
    /// Clean plans: the remote leader and the in-proc master agree on
    /// every per-call outcome and every monitor counter — including the
    /// detection-lag field, which must stay zero when nothing diverges.
    #[test]
    fn remote_matches_in_proc_on_clean_plans(
        plan in proptest::collection::vec(proptest::collection::vec(0u8..5, 1..10), 1..3),
        variants_sel in 0usize..2,
        batch_sel in 0usize..2,
    ) {
        let variants = [2usize, 8][variants_sel];
        let batch = [1usize, 8][batch_sel];
        let (sync_ok, sync_stats, sync_div) = run_plan(Path::Sync, variants, batch, &plan);
        let (rem_ok, rem_stats, rem_div) =
            run_plan(Path::Remote(RemoteChannel::InProc), variants, batch, &plan);
        prop_assert!(sync_div.is_none(), "in-proc run diverged: {sync_div:?}");
        prop_assert!(rem_div.is_none(), "remote run diverged: {rem_div:?}");
        prop_assert_eq!(&sync_ok, &rem_ok,
            "in-proc vs remote outcomes differ (variants={}, batch={})", variants, batch);
        prop_assert_eq!(&sync_stats, &rem_stats,
            "in-proc vs remote stats differ (variants={}, batch={})", variants, batch);
        prop_assert_eq!(rem_stats.detection_lag_sync_ops, 0,
            "clean plans must accumulate no detection lag");
    }
}

/// The injected-mismatch scenario across the in-proc transport and all
/// three remote channels: one thread, two variants, a mid-batch divergent
/// mprotect followed by a synchronous write that forces the flush.  All
/// runs must blame exactly the same (thread, sequence, variant) — streaming
/// the batch over a byte channel must not smear the first-mismatch slot.
#[test]
fn remote_reports_identical_mismatch_verdicts() {
    let mprotect = |len: i64| SyscallRequest::new(Sysno::Mprotect).with_int(len);
    let write = || {
        SyscallRequest::new(Sysno::Write)
            .with_fd(1)
            .with_payload(b"flush")
    };
    for batch in [1usize, 8] {
        let mut reports = Vec::new();
        for path in [
            Path::Sync,
            Path::Remote(RemoteChannel::InProc),
            Path::Remote(RemoteChannel::Unix),
            Path::Remote(RemoteChannel::Tcp),
        ] {
            let mvee = Arc::new(build_mvee(path, 2, 1, batch));
            let mut handles = Vec::new();
            for variant in 0..2 {
                let mvee = Arc::clone(&mvee);
                handles.push(std::thread::spawn(move || {
                    let lens: [i64; 3] = if variant == 0 {
                        [4096, 4096, 4096]
                    } else {
                        [4096, 666, 4096]
                    };
                    if path != Path::Sync && variant == 0 {
                        let port = mvee.leader_port(0);
                        for len in lens {
                            port.syscall(&mprotect(len))?;
                        }
                        port.syscall(&write()).map(|_| ())
                    } else {
                        let port = mvee.thread_port(variant, 0);
                        for len in lens {
                            port.syscall(&mprotect(len))?;
                        }
                        port.syscall(&write()).map(|_| ())
                    }
                }));
            }
            let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert!(
                results.iter().any(|r| r.is_err()),
                "the mismatch must surface on at least one variant"
            );
            reports.push(mvee.divergence().expect("divergence report"));
        }
        let sync = &reports[0];
        assert_eq!(sync.sequence, 1, "must blame the exact mid-batch slot");
        assert_eq!(sync.variant, 1);
        for other in &reports[1..] {
            assert_eq!(
                sync.sequence, other.sequence,
                "batch={batch}: first-mismatch slot differs between transports"
            );
            assert_eq!(sync.thread, other.thread);
            assert_eq!(sync.variant, other.variant, "blamed variant differs");
            assert_eq!(
                std::mem::discriminant(&sync.kind),
                std::mem::discriminant(&other.kind),
                "divergence kind differs"
            );
        }
    }
}

/// A replication slave that times out must produce a byte-identical
/// `ReplicationTimeout` report whether the publisher is the in-proc master
/// or a remote leader that never issues the call: same `publisher`, same
/// `arrived` set, same (thread, sequence, variant).
#[test]
fn remote_replication_timeout_verdicts_are_field_identical() {
    let mut reports = Vec::new();
    for path in [Path::Sync, Path::Remote(RemoteChannel::InProc)] {
        let mvee = Arc::new(
            Mvee::builder()
                .variants(2)
                .threads(1)
                .agent(AgentKind::Null)
                .batch(1)
                .transport(match path {
                    Path::Sync => Transport::Sync,
                    Path::Remote(channel) => Transport::Remote { channel },
                })
                .lockstep_timeout(Duration::from_millis(200))
                .manual_clock(true)
                .build(),
        );
        // Only the slave issues the replicated call; the leader/master
        // never publishes, so the slave's wait must expire.
        let r = mvee
            .thread_port(1, 0)
            .syscall(&SyscallRequest::new(Sysno::Gettimeofday));
        assert!(r.is_err(), "the slave's replication wait must time out");
        reports.push(mvee.divergence().expect("divergence report"));
    }
    let sync = &reports[0];
    assert!(
        matches!(
            sync.kind,
            mvee::core::DivergenceKind::ReplicationTimeout { publisher: 0, .. }
        ),
        "expected a ReplicationTimeout blaming the master, got {:?}",
        sync.kind
    );
    assert_eq!(
        &reports[0], &reports[1],
        "replication-timeout reports must be field-identical across transports"
    );
}

/// A leader that never arrives at a synchronous rendezvous earns the same
/// `RendezvousTimeout` attribution the in-proc master would: the report
/// blames variant 0 (the missing peer), listing exactly the variants that
/// did arrive.
#[test]
fn remote_rendezvous_timeout_blames_the_absent_leader() {
    let mut reports = Vec::new();
    for path in [Path::Sync, Path::Remote(RemoteChannel::InProc)] {
        let mvee = Arc::new(
            Mvee::builder()
                .variants(2)
                .threads(1)
                .agent(AgentKind::Null)
                .batch(1)
                .transport(match path {
                    Path::Sync => Transport::Sync,
                    Path::Remote(channel) => Transport::Remote { channel },
                })
                .lockstep_timeout(Duration::from_millis(200))
                .manual_clock(true)
                .build(),
        );
        // Only the slave issues the lockstep write; variant 0 never shows.
        let r = mvee.thread_port(1, 0).syscall(
            &SyscallRequest::new(Sysno::Write)
                .with_fd(1)
                .with_payload(b"alone"),
        );
        assert!(r.is_err(), "the rendezvous must time out");
        reports.push(mvee.divergence().expect("divergence report"));
    }
    assert!(
        matches!(
            reports[0].kind,
            mvee::core::DivergenceKind::RendezvousTimeout { .. }
        ),
        "expected a RendezvousTimeout, got {:?}",
        reports[0].kind
    );
    assert_eq!(reports[0].variant, 0, "the absent leader must be blamed");
    assert_eq!(
        &reports[0], &reports[1],
        "rendezvous-timeout reports must be field-identical across transports"
    );
}

/// Socket-loopback smoke: the Unix and TCP channels carry a clean
/// multi-thread plan to the same outcomes and counters as the in-proc
/// channel — the framed protocol survives a real kernel byte stream.
#[test]
fn socket_loopback_channels_match_in_proc_channel() {
    let plan: Vec<Vec<u8>> = vec![vec![0, 1, 2, 3, 4, 0, 1, 2], vec![3, 2, 1, 0, 4, 3]];
    let (sync_ok, sync_stats, sync_div) = run_plan(Path::Sync, 2, 8, &plan);
    assert!(sync_div.is_none());
    for channel in [
        RemoteChannel::InProc,
        RemoteChannel::Unix,
        RemoteChannel::Tcp,
    ] {
        let (ok, stats, div) = run_plan(Path::Remote(channel), 2, 8, &plan);
        assert!(div.is_none(), "{channel:?} loopback run diverged: {div:?}");
        assert_eq!(
            sync_ok, ok,
            "{channel:?} loopback outcomes differ from in-proc"
        );
        assert_eq!(
            sync_stats, stats,
            "{channel:?} loopback stats differ from in-proc"
        );
    }
}

/// The leader port panics are real: acquiring an in-proc port for variant 0
/// of a distributed MVEE is refused, as is a leader port on a non-remote
/// MVEE.
#[test]
fn leader_port_acquisition_is_guarded() {
    let remote = build_mvee(Path::Remote(RemoteChannel::InProc), 2, 1, 1);
    let refused = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = remote.thread_port(0, 0);
    }));
    assert!(
        refused.is_err(),
        "an in-proc port for the remote leader must be refused"
    );
    drop(remote);
    let local = build_mvee(Path::Sync, 2, 1, 1);
    let refused = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = local.leader_port(0);
    }));
    assert!(
        refused.is_err(),
        "a leader port without Transport::Remote must be refused"
    );
}
