//! Fault injection against the replication channel: a follower killed
//! mid-batch, a torn connection and garbage byte streams must each surface
//! as a *typed* [`PeerFailure`] naming the missing peer — never a hang, a
//! panic, or a bogus divergence verdict.
//!
//! Every live scenario runs under a watchdog: the failure mode these tests
//! guard against is a leader (or an in-proc slave) blocked forever on a
//! peer that will never answer.

use std::io::Write;
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use mvee::core::config::{RecoveryPolicy, RemoteChannel, Transport};
use mvee::core::mvee::Mvee;
use mvee::core::remote::transport::pipe;
use mvee::core::remote::{
    Duplex, Follower, PeerFailure, PeerFailureKind, RemoteLeader, RemotePeer,
};
use mvee::core::MonitorError;
use mvee::kernel::syscall::{SyscallRequest, Sysno};
use mvee::sync_agent::agents::AgentKind;

const WATCHDOG: Duration = Duration::from_secs(30);

/// Runs `f` on a scenario thread and panics if it outlives the watchdog.
fn with_watchdog<T: Send + 'static>(label: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (done_tx, done_rx) = mpsc::channel();
    let scenario = thread::spawn(move || {
        let _ = done_tx.send(f());
    });
    match done_rx.recv_timeout(WATCHDOG) {
        Ok(value) => {
            scenario.join().expect("scenario thread panicked");
            value
        }
        Err(_) => panic!("{label}: remote fault scenario deadlocked ({WATCHDOG:?})"),
    }
}

/// Polls `probe` until it returns `Some` or the deadline passes.
fn eventually<T>(label: &str, mut probe: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Some(value) = probe() {
            return value;
        }
        assert!(Instant::now() < deadline, "{label}: condition never held");
        thread::sleep(Duration::from_millis(5));
    }
}

/// A follower aborted (killed) while the leader is blocked waiting for its
/// synchronous-arrival ack and still holds half a deferred batch: the
/// leader must unblock promptly — well before the lockstep timeout's
/// backstop — with a typed failure naming the follower, and later calls
/// must fail fast instead of streaming into the void.
#[test]
fn follower_killed_mid_batch_unblocks_the_leader() {
    with_watchdog("follower killed mid-batch", || {
        let mvee = Mvee::builder()
            .variants(2)
            .threads(1)
            .agent(AgentKind::Null)
            .batch(8)
            .transport(Transport::Remote {
                channel: RemoteChannel::InProc,
            })
            .lockstep_timeout(Duration::from_secs(60))
            .manual_clock(true)
            .build();
        let mvee = Arc::new(mvee);
        // Variant 1 never runs, so the leader's synchronous write can only
        // resolve by timeout (60s) — or by the follower dying first.
        let leader_thread = {
            let mvee = Arc::clone(&mvee);
            thread::spawn(move || {
                let port = mvee.leader_port(0);
                // Half a batch of deferred comparisons rides along.
                for _ in 0..3 {
                    port.syscall(&SyscallRequest::new(Sysno::Brk).with_int(0))?;
                }
                // Blocks waiting for the follower's ack.
                port.syscall(
                    &SyscallRequest::new(Sysno::Write)
                        .with_fd(1)
                        .with_payload(b"stuck"),
                )
                .map(|_| ())
            })
        };
        thread::sleep(Duration::from_millis(100));
        assert!(
            !leader_thread.is_finished(),
            "the leader must be blocked on the follower's ack"
        );
        // Kill the follower. The pump poisons the table, drops its write
        // half, and the leader's reader observes the death.
        let killed_at = Instant::now();
        mvee.abort_follower();
        let result = leader_thread.join().expect("leader thread panicked");
        let unblocked_in = killed_at.elapsed();
        let err = result.expect_err("the blocked write must fail");
        assert_eq!(
            err,
            MonitorError::Peer(PeerFailure {
                peer: RemotePeer::Follower,
                kind: PeerFailureKind::Disconnected,
            }),
            "the leader must learn exactly which peer died and how"
        );
        assert!(
            unblocked_in < Duration::from_secs(10),
            "the leader took {unblocked_in:?} to unblock — the channel \
             death must beat the 60s lockstep timeout"
        );
        assert_eq!(
            mvee.remote_fault(),
            Some(PeerFailure {
                peer: RemotePeer::Follower,
                kind: PeerFailureKind::Disconnected,
            })
        );
        // Later leader calls fail fast at the gate.
        let port = mvee.leader_port(1);
        let err = port
            .syscall(&SyscallRequest::new(Sysno::Brk).with_int(0))
            .expect_err("calls after the follower died must fail");
        assert!(matches!(err, MonitorError::Peer(_)));
    });
}

/// Builds a monitor + agent pair for splicing raw channels under the
/// public leader/follower entry points.
fn bare_mvee(variants: usize) -> Mvee {
    Mvee::builder()
        .variants(variants)
        .threads(1)
        .agent(AgentKind::Null)
        .batch(1)
        .lockstep_timeout(Duration::from_secs(60))
        .manual_clock(true)
        .build()
}

/// Garbage bytes fed to a follower must surface as a `Corrupt` failure
/// naming the leader — and poison the rendezvous table so in-proc slave
/// threads unblock instead of waiting on arrivals that will never come.
#[test]
fn garbage_stream_faults_the_follower_naming_the_leader() {
    with_watchdog("garbage stream to follower", || {
        let mvee = Arc::new(bare_mvee(2));
        let (f_rx, mut garbage_tx) = pipe();
        let (_ack_rx, f_tx) = pipe();
        let handle = Follower::spawn(
            Arc::clone(mvee.monitor()),
            Duplex::from_parts(Box::new(f_rx), Box::new(f_tx)),
        );
        // A slave blocks in a rendezvous the leader will never join.
        let slave = {
            let mvee = Arc::clone(&mvee);
            thread::spawn(move || {
                let port = mvee.thread_port(1, 0);
                port.syscall(
                    &SyscallRequest::new(Sysno::Write)
                        .with_fd(1)
                        .with_payload(b"waiting"),
                )
            })
        };
        thread::sleep(Duration::from_millis(50));
        garbage_tx
            .write_all(b"this is definitely not a CRC-framed record stream")
            .expect("the pipe is open");
        let fault = eventually("follower fault", || handle.fault());
        assert_eq!(
            fault,
            PeerFailure {
                peer: RemotePeer::Leader,
                kind: PeerFailureKind::Corrupt,
            },
            "garbage must be blamed on the leader as corruption"
        );
        // The poisoned table unblocks the slave with ShutDown, not a hang.
        let err = slave
            .join()
            .expect("slave thread panicked")
            .expect_err("the slave's rendezvous must abort");
        assert_eq!(err, MonitorError::ShutDown);
        drop(garbage_tx);
        drop(handle);
    });
}

/// A connection torn mid-frame (valid prefix, then EOF before the frame
/// completes) is corruption, not a clean goodbye.
#[test]
fn torn_frame_is_reported_as_corruption() {
    with_watchdog("torn frame to follower", || {
        let mvee = bare_mvee(2);
        let (f_rx, mut torn_tx) = pipe();
        let (_ack_rx, f_tx) = pipe();
        let handle = Follower::spawn(
            Arc::clone(mvee.monitor()),
            Duplex::from_parts(Box::new(f_rx), Box::new(f_tx)),
        );
        // Half a frame header, then the connection dies.
        torn_tx.write_all(&[0x03, 0x00]).expect("the pipe is open");
        drop(torn_tx);
        let fault = eventually("follower fault", || handle.fault());
        assert_eq!(
            fault,
            PeerFailure {
                peer: RemotePeer::Leader,
                kind: PeerFailureKind::Corrupt,
            },
            "a torn frame must read as corruption, not a clean close"
        );
        drop(handle);
    });
}

/// A leader whose stream simply ends — no `Bye`, no torn frame — died:
/// the follower names the leader as disconnected.
#[test]
fn silent_leader_death_is_reported_as_disconnection() {
    with_watchdog("silent leader death", || {
        let mvee = bare_mvee(2);
        let (f_rx, silent_tx) = pipe();
        let (_ack_rx, f_tx) = pipe();
        let handle = Follower::spawn(
            Arc::clone(mvee.monitor()),
            Duplex::from_parts(Box::new(f_rx), Box::new(f_tx)),
        );
        drop(silent_tx); // clean EOF at a frame boundary, but no Bye
        let fault = eventually("follower fault", || handle.fault());
        assert_eq!(
            fault,
            PeerFailure {
                peer: RemotePeer::Leader,
                kind: PeerFailureKind::Disconnected,
            }
        );
        drop(handle);
    });
}

/// Garbage on the leader's ack stream: the leader blames the follower for
/// corruption, and blocked waits (the barrier) resolve with the typed
/// failure.
#[test]
fn garbage_ack_stream_faults_the_leader_naming_the_follower() {
    with_watchdog("garbage acks to leader", || {
        let mvee = bare_mvee(2);
        let (l_rx, mut garbage_tx) = pipe();
        let (_sink_rx, l_tx) = pipe();
        let leader = RemoteLeader::connect(
            Arc::clone(mvee.monitor()),
            Arc::clone(mvee.agent()),
            Duplex::from_parts(Box::new(l_rx), Box::new(l_tx)),
        );
        garbage_tx
            .write_all(b"not an ack, not a verdict, not a frame")
            .expect("the pipe is open");
        let err = leader
            .barrier()
            .expect_err("the barrier must fail on a corrupt ack stream");
        assert_eq!(
            err,
            MonitorError::Peer(PeerFailure {
                peer: RemotePeer::Follower,
                kind: PeerFailureKind::Corrupt,
            })
        );
        drop(garbage_tx);
    });
}

/// Under [`RecoveryPolicy::Quarantine`], a dead replication peer is a dead
/// *variant*, not a dead run: when the leader's stream ends without a
/// `Bye`, the follower quarantines the wire-attached lane (variant 0)
/// instead of poisoning the table, mastership fails over to the lowest
/// in-proc survivor, and the degraded quorum keeps serving.
#[test]
fn dead_leader_is_quarantined_and_survivors_keep_serving() {
    with_watchdog("leader death under quarantine", || {
        let mvee = Arc::new(
            Mvee::builder()
                .variants(3)
                .threads(1)
                .agent(AgentKind::Null)
                .batch(1)
                .recovery(RecoveryPolicy::quarantine())
                .lockstep_timeout(Duration::from_secs(60))
                .manual_clock(true)
                .build(),
        );
        let (f_rx, silent_tx) = pipe();
        let (_ack_rx, f_tx) = pipe();
        let handle = Follower::spawn(
            Arc::clone(mvee.monitor()),
            Duplex::from_parts(Box::new(f_rx), Box::new(f_tx)),
        );
        drop(silent_tx); // silent leader death: EOF, no Bye
        let fault = eventually("follower fault", || handle.fault());
        assert_eq!(fault.peer, RemotePeer::Leader);
        eventually("variant 0 quarantined", || {
            mvee.quarantined_variants().contains(&0).then_some(())
        });
        assert_eq!(mvee.divergence(), None, "the run must keep serving");
        assert_eq!(
            mvee.monitor().master_variant(),
            1,
            "mastership fails over to the lowest in-proc survivor"
        );
        // The in-proc survivors still rendezvous — now against each other.
        let mut survivors = Vec::new();
        for variant in 1..3 {
            let mvee = Arc::clone(&mvee);
            survivors.push(thread::spawn(move || {
                let port = mvee.thread_port(variant, 0);
                port.syscall(
                    &SyscallRequest::new(Sysno::Write)
                        .with_fd(1)
                        .with_payload(b"degraded"),
                )
            }));
        }
        for h in survivors {
            h.join()
                .expect("survivor thread panicked")
                .expect("the degraded quorum must keep serving");
        }
        assert_eq!(mvee.quarantined_variants(), vec![0]);
        let stats = mvee.monitor_stats();
        assert_eq!(stats.quarantines, 1);
        assert!(
            stats.degraded_calls >= 2,
            "both survivor calls ran degraded"
        );
        drop(handle);
    });
}

/// A mismatched `Hello` (an MVEE of a different shape on the far end) is
/// refused as corruption before any record is applied.
#[test]
fn mismatched_hello_is_refused() {
    with_watchdog("mismatched hello", || {
        let mvee = bare_mvee(2);
        let other = bare_mvee(3); // three variants: wrong shape
        let (leader_end, follower_end) = Duplex::in_proc_pair();
        let handle = Follower::spawn(Arc::clone(mvee.monitor()), follower_end);
        let leader = RemoteLeader::connect(
            Arc::clone(other.monitor()),
            Arc::clone(other.agent()),
            leader_end,
        );
        let fault = eventually("follower fault", || handle.fault());
        assert_eq!(
            fault,
            PeerFailure {
                peer: RemotePeer::Leader,
                kind: PeerFailureKind::Corrupt,
            },
            "a wrong-shape Hello must be refused as corruption"
        );
        leader.shutdown();
        drop(leader);
        drop(handle);
    });
}
