//! Property tests: replaying a recorded divergence journal re-derives the
//! live run exactly, with zero live variants.
//!
//! For randomized per-thread call plans, batch sizes ∈ {1, 8}, variant
//! counts ∈ {2, 8} and both transports (synchronous [`ThreadPort`]s and
//! async submission/completion rings), a run recorded through
//! [`JournalMode::Record`] and then replayed offline must reproduce the
//! live monitor statistics counter for counter, the clean/diverged verdict,
//! and — for divergent runs — the recorded report field for field (same
//! first-mismatch slot, same blamed variant, same kind).  The deterministic
//! companions pin the injected-mismatch report equivalence and the
//! [`Mvee::replay_recorded`] replay-mode front end.
//!
//! [`ThreadPort`]: mvee::core::port::ThreadPort
//! [`JournalMode::Record`]: mvee::core::JournalMode
//! [`Mvee::replay_recorded`]: mvee::core::mvee::Mvee::replay_recorded

use std::sync::Arc;

use proptest::prelude::*;

use mvee::core::config::{Pollers, Transport};
use mvee::core::journal::{replay, Journal, JournalRecorder};
use mvee::core::monitor::MonitorStats;
use mvee::core::mvee::Mvee;
use mvee::core::{DivergenceReport, JournalMode};
use mvee::kernel::syscall::{SyscallRequest, Sysno};
use mvee::sync_agent::agents::AgentKind;

/// The two transports under comparison; both must emit equivalent journals.
#[derive(Clone, Copy, PartialEq)]
enum Path {
    Sync,
    Async,
}

/// The call an op tag stands for (identical across variants; the divergence
/// scenarios inject their mismatch explicitly).
fn req_for(tag: u8) -> SyscallRequest {
    match tag % 5 {
        0 => SyscallRequest::new(Sysno::Brk).with_int(0),
        1 => SyscallRequest::new(Sysno::Mmap).with_int(8192),
        2 => SyscallRequest::new(Sysno::Mprotect).with_int(4096),
        3 => SyscallRequest::new(Sysno::Gettimeofday),
        _ => SyscallRequest::new(Sysno::SchedYield),
    }
}

fn build_recording_mvee(
    path: Path,
    variants: usize,
    threads: usize,
    batch: usize,
) -> (Mvee, Arc<JournalRecorder>) {
    let recorder = Arc::new(JournalRecorder::new());
    let transport = match path {
        Path::Sync => Transport::Sync,
        Path::Async => Transport::AsyncRings {
            depth: 8,
            pollers: Pollers::PerPort,
        },
    };
    let mvee = Mvee::builder()
        .variants(variants)
        .threads(threads.max(1))
        .agent(AgentKind::Null)
        .batch(batch)
        .transport(transport)
        .journal(JournalMode::Record(Arc::clone(&recorder)))
        .lockstep_timeout(std::time::Duration::from_secs(10))
        .manual_clock(true)
        .build();
    (mvee, recorder)
}

/// Drives `plan` through a recording MVEE and returns the live stats, the
/// live divergence and the finished journal bytes.
fn run_recorded(
    path: Path,
    variants: usize,
    batch: usize,
    plan: &[Vec<u8>],
) -> (MonitorStats, Option<DivergenceReport>, Vec<u8>) {
    let (mvee, recorder) = build_recording_mvee(path, variants, plan.len(), batch);
    let mvee = Arc::new(mvee);
    let plan = Arc::new(plan.to_vec());
    let mut handles = Vec::new();
    for variant in 0..variants {
        for thread in 0..plan.len() {
            let mvee = Arc::clone(&mvee);
            let plan = Arc::clone(&plan);
            handles.push(std::thread::spawn(move || match path {
                Path::Sync => {
                    let port = mvee.thread_port(variant, thread);
                    for &tag in &plan[thread] {
                        let _ = port.syscall(&req_for(tag));
                    }
                }
                Path::Async => {
                    let port = mvee.async_thread_port(variant, thread);
                    for &tag in &plan[thread] {
                        let _ = port.syscall(&req_for(tag));
                    }
                }
            }));
        }
    }
    for h in handles {
        h.join().expect("plan thread panicked");
    }
    (mvee.monitor_stats(), mvee.divergence(), recorder.finish())
}

proptest! {
    /// Clean plans, both transports: the offline replay of the journal must
    /// agree with the live run on every monitor counter and on the clean
    /// verdict, and the two transports' journals must replay to the same
    /// run shape (same stats, arrivals, publishes, slots).
    #[test]
    fn replay_reproduces_live_runs(
        plan in proptest::collection::vec(proptest::collection::vec(0u8..5, 1..8), 1..3),
        variants_sel in 0usize..2,
        batch_sel in 0usize..2,
    ) {
        let variants = [2usize, 8][variants_sel];
        let batch = [1usize, 8][batch_sel];
        let mut replayed_shapes = Vec::new();
        for path in [Path::Sync, Path::Async] {
            let (live_stats, live_div, bytes) = run_recorded(path, variants, batch, &plan);
            prop_assert!(live_div.is_none(), "clean plan diverged: {live_div:?}");
            let run = replay(&bytes).expect("recorded journal must replay");
            prop_assert_eq!(run.stats, live_stats,
                "replayed stats differ from live (variants={}, batch={})", variants, batch);
            prop_assert!(run.divergence.is_none());
            prop_assert_eq!(run.header.variants as usize, variants);
            prop_assert_eq!(run.header.batch as usize, batch);
            replayed_shapes.push((run.stats, run.arrivals, run.publishes, run.slots));
        }
        prop_assert_eq!(replayed_shapes[0], replayed_shapes[1],
            "sync and async journals replay to different run shapes");
    }
}

/// The injected-mismatch scenario: one thread, two variants, a mid-batch
/// divergent mprotect followed by a synchronous write that forces the
/// flush.  The journal replay must blame exactly the live run's
/// (thread, sequence, variant) with the live report's kind — on both
/// transports and both batch sizes — with zero live variants involved.
#[test]
fn replay_reproduces_divergence_reports_field_for_field() {
    let mprotect = |len: i64| SyscallRequest::new(Sysno::Mprotect).with_int(len);
    let write = || {
        SyscallRequest::new(Sysno::Write)
            .with_fd(1)
            .with_payload(b"flush")
    };
    for batch in [1usize, 8] {
        for path in [Path::Sync, Path::Async] {
            let (mvee, recorder) = build_recording_mvee(path, 2, 1, batch);
            let mvee = Arc::new(mvee);
            let mut handles = Vec::new();
            for variant in 0..2 {
                let mvee = Arc::clone(&mvee);
                handles.push(std::thread::spawn(move || {
                    let lens: [i64; 3] = if variant == 0 {
                        [4096, 4096, 4096]
                    } else {
                        [4096, 666, 4096]
                    };
                    let run = |syscall: &dyn Fn(&SyscallRequest) -> bool| {
                        for len in lens {
                            if !syscall(&mprotect(len)) {
                                return false;
                            }
                        }
                        syscall(&write())
                    };
                    match path {
                        Path::Sync => {
                            let port = mvee.thread_port(variant, 0);
                            run(&|req| port.syscall(req).is_ok())
                        }
                        Path::Async => {
                            let port = mvee.async_thread_port(variant, 0);
                            run(&|req| port.syscall(req).is_ok())
                        }
                    }
                }));
            }
            let results: Vec<bool> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert!(results.iter().any(|ok| !ok), "the mismatch must surface");
            let live = mvee.divergence().expect("live divergence report");
            let run = replay(&recorder.finish()).expect("divergent journal must replay");
            let replayed = run
                .divergence
                .expect("replay must reproduce the divergence");
            assert_eq!(
                replayed, live,
                "replayed report differs from live (batch={batch})"
            );
            assert_eq!(replayed.sequence, 1, "must blame the exact mid-batch slot");
            assert_eq!(replayed.thread, 0);
            assert_eq!(replayed.variant, 1);
            assert_eq!(run.stats, mvee.monitor_stats());
        }
    }
}

/// The replay-mode front end: an `Mvee` built with `JournalMode::Replay`
/// carries the decoded journal and re-derives the verdict through
/// `replay_recorded`, without driving any variant.
#[test]
fn replay_mode_front_end_rederives_the_verdict() {
    // Record a divergent run first.
    let (mvee, recorder) = build_recording_mvee(Path::Sync, 2, 1, 1);
    let mvee = Arc::new(mvee);
    let mut handles = Vec::new();
    for variant in 0..2 {
        let mvee = Arc::clone(&mvee);
        handles.push(std::thread::spawn(move || {
            let port = mvee.thread_port(variant, 0);
            let len = if variant == 0 { 4096 } else { 666 };
            let _ = port.syscall(&SyscallRequest::new(Sysno::Mprotect).with_int(len));
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let live = mvee.divergence().expect("live divergence");
    let journal = Journal::decode(&recorder.finish()).expect("journal decodes");

    // A replay-mode MVEE never touches the recorded run's variants.
    let offline = Mvee::builder()
        .variants(2)
        .threads(1)
        .agent(AgentKind::Null)
        .journal(JournalMode::Replay(Arc::new(journal)))
        .manual_clock(true)
        .build();
    let run = offline
        .replay_recorded()
        .expect("replay mode must expose the journal")
        .expect("journal must replay");
    assert_eq!(run.divergence, Some(live));

    // Off- and record-mode MVEEs have nothing to replay.
    assert!(mvee.replay_recorded().is_none());
    assert!(mvee.journal_recorder().is_some());
    assert!(offline.journal_recorder().is_none());
}
