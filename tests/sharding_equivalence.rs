//! Property tests: the sharded rendezvous table (`shards > 1`) is
//! observationally equivalent to the original global table (`shards = 1`).
//!
//! For randomized per-thread call plans — including injected divergences —
//! every (variant, thread) must observe the *same sequence* of
//! [`ArrivalResult`]s from a sharded table as from an unsharded one, even
//! though real OS threads race through the rendezvous in both cases.  The
//! same holds for the replication path (`publish_outcome`/`wait_outcome`).

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use mvee::core::lockstep::{ArrivalResult, LockstepTable};
use mvee::kernel::syscall::{ComparisonKey, SyscallOutcome, SyscallRequest, Sysno};

/// The comparison key thread `thread` of variant `variant` presents for its
/// `seq`-th call under op tag `tag`.  Tag 1 makes the *last* variant present
/// a divergent payload; every other tag is agreed upon by all variants.
fn key_for(tag: u8, thread: usize, seq: usize, variant: usize, variants: usize) -> ComparisonKey {
    let diverge = tag == 1 && variant == variants - 1;
    SyscallRequest::new(Sysno::Write)
        .with_payload(&[tag, thread as u8, seq as u8, u8::from(diverge)])
        .comparison_key()
}

/// Runs `plan` (one op-tag vector per logical thread) through a table with
/// the given shard count, all variants' threads as real OS threads, and
/// returns the per-(variant, thread) sequences of arrival results.
fn run_plan(shards: usize, variants: usize, plan: &[Vec<u8>]) -> Vec<Vec<ArrivalResult>> {
    let table = Arc::new(LockstepTable::with_shards(variants, shards));
    let plan = Arc::new(plan.to_vec());
    let mut handles = Vec::new();
    for variant in 0..variants {
        for thread in 0..plan.len() {
            let table = Arc::clone(&table);
            let plan = Arc::clone(&plan);
            handles.push(std::thread::spawn(move || {
                let mut results = Vec::new();
                for (seq, &tag) in plan[thread].iter().enumerate() {
                    let key = (thread, seq as u64);
                    let cmp = key_for(tag, thread, seq, variant, variants);
                    results.push(table.arrive(key, variant, cmp, Duration::from_secs(10)));
                    table.consume(key, variant);
                }
                ((variant, thread), results)
            }));
        }
    }
    let mut collected: Vec<((usize, usize), Vec<ArrivalResult>)> = handles
        .into_iter()
        .map(|h| h.join().expect("plan thread panicked"))
        .collect();
    collected.sort_by_key(|(id, _)| *id);
    collected.into_iter().map(|(_, results)| results).collect()
}

proptest! {
    /// Sharded and unsharded tables produce identical `ArrivalResult`
    /// sequences for randomized plans and thread interleavings, including
    /// injected mismatches.
    #[test]
    fn sharded_rendezvous_is_equivalent_to_unsharded(
        plan in proptest::collection::vec(proptest::collection::vec(0u8..4, 1..7), 1..5),
        variants in 2usize..5,
        shards in 2usize..9,
    ) {
        let unsharded = run_plan(1, variants, &plan);
        let sharded = run_plan(shards, variants, &plan);
        prop_assert_eq!(unsharded, sharded);
    }

    /// The replication path delivers identical outcomes and timestamps from a
    /// sharded table and an unsharded one, and reclaims all slots either way.
    #[test]
    fn sharded_replication_is_equivalent_to_unsharded(
        values in proptest::collection::vec(0i64..1_000, 1..24),
        threads in 1usize..9,
        shards in 2usize..9,
    ) {
        let run = |shard_count: usize| {
            let table = LockstepTable::with_shards(2, shard_count);
            let mut observed = Vec::new();
            for (i, &v) in values.iter().enumerate() {
                let key = (i % threads, (i / threads) as u64);
                table.publish_outcome(key, SyscallOutcome::ok(v), Some(i as u64));
                observed.push(table.wait_outcome(key, Duration::from_secs(1)));
                table.consume(key, 0);
                table.consume(key, 1);
            }
            assert_eq!(table.live_slots(), 0, "shards={shard_count}: slots leaked");
            observed
        };
        prop_assert_eq!(run(1), run(shards));
    }
}
