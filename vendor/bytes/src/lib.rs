//! Vendored minimal stand-in for `bytes`.
//!
//! The build container has no network access, so the real `bytes` cannot be
//! fetched.  This crate implements the subset of the API the workspace uses:
//! `Bytes` as an immutable byte container and `BytesMut` as a growable buffer
//! with `split_to`/`freeze`.  Both are plain `Vec<u8>` wrappers — the real
//! crate's zero-copy reference counting is an optimization, not a semantic
//! difference, at the scale of this simulation.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// Immutable contiguous byte container, mirroring `bytes::Bytes`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub const fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// Copies the slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::copy_from_slice(data)
    }
}

impl From<&str> for Bytes {
    fn from(data: &str) -> Self {
        Self::copy_from_slice(data.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(buf: BytesMut) -> Self {
        buf.freeze()
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.into_iter()
    }
}

/// Growable byte buffer, mirroring `bytes::BytesMut`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub const fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes currently in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends the slice to the buffer.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.data.extend_from_slice(data);
    }

    /// Removes and returns the first `at` bytes, leaving the rest in `self`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.data.split_off(at);
        let head = std::mem::replace(&mut self.data, rest);
        BytesMut { data: head }
    }

    /// Converts the buffer into immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_to_keeps_the_tail() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(b"hello world");
        let head = buf.split_to(5).freeze();
        assert_eq!(&head[..], b"hello");
        assert_eq!(&buf[..], b" world");
    }

    #[test]
    fn bytes_roundtrip() {
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), b"abc".to_vec());
    }
}
