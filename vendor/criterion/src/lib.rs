//! Vendored minimal stand-in for `criterion`.
//!
//! The build container has no network access, so the real `criterion` cannot
//! be fetched.  This crate implements the subset of its API the workspace's
//! benches use — `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher`,
//! `Throughput`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros — with a simple warm-up + fixed-sample timing loop and mean/min/max
//! reporting on stdout.  Statistical analysis, HTML reports and comparison
//! against saved baselines are out of scope; swap in the registry crate for
//! those.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier, mirroring `criterion::black_box`.
///
/// `std::hint::black_box` is stable and provides the real optimization
/// barrier; this is a thin re-export so bench code matches the registry API.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation for a benchmark group, mirroring
/// `criterion::Throughput`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into an id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Timing driver handed to each benchmark closure, mirroring
/// `criterion::Bencher`.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times `routine`, first warming up for the configured duration and then
    /// recording the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_up_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_end {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Shared measurement settings (a subset of `Criterion`'s).
#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

/// The benchmark manager, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            settings: self.settings.clone(),
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        routine: R,
    ) -> &mut Self {
        let settings = self.settings.clone();
        run_one(&settings, None, &id.into(), routine);
        self
    }
}

/// A group of benchmarks sharing settings, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.settings.sample_size = n;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, dur: Duration) -> &mut Self {
        self.settings.warm_up_time = dur;
        self
    }

    /// Sets the target measurement duration (recorded for API parity; the
    /// sample count, not wall-clock, bounds measurement here).
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.settings.measurement_time = dur;
        self
    }

    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        routine: R,
    ) -> &mut Self {
        run_one(&self.settings, Some(&self.name), &id.into(), routine);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        run_one(&self.settings, Some(&self.name), &id.into(), |b| {
            routine(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<R: FnMut(&mut Bencher)>(
    settings: &Settings,
    group: Option<&str>,
    id: &BenchmarkId,
    mut routine: R,
) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(settings.sample_size),
        sample_size: settings.sample_size,
        warm_up_time: settings.warm_up_time,
    };
    routine(&mut bencher);
    let label = match group {
        Some(group) => format!("{group}/{}", id.id),
        None => id.id.clone(),
    };
    if bencher.samples.is_empty() {
        println!("{label:<60} (no samples: routine never called iter)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    println!(
        "{label:<60} mean {mean:>12?}   min {min:>12?}   max {max:>12?}   ({} samples)",
        bencher.samples.len()
    );
}

/// Declares a set of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; a real
            // criterion parses them, this stand-in only needs to ignore them.
            $($group();)+
        }
    };
}
