//! Vendored stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The build container has no network access, so the real `parking_lot`
//! cannot be fetched.  This crate implements the subset of its API the
//! workspace uses — `Mutex`/`MutexGuard` without lock poisoning, `RwLock`,
//! and a `Condvar` whose wait methods take the guard by `&mut` — with the
//! same signatures, so the workspace can switch to the registry crate without
//! source changes.  Poisoning is neutralized by recovering the inner guard
//! from a `PoisonError`, matching parking_lot's semantics (a panicking
//! critical section leaves the data accessible).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// A mutual exclusion primitive (no poisoning), mirroring
/// `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The std guard sits in an `Option` so [`Condvar`]'s wait methods — which
/// must consume and re-acquire the std guard while the caller keeps holding
/// this wrapper by `&mut` — can move it out and back without `unsafe`.  The
/// slot is `Some` at all times outside those wait internals.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_deref()
            .expect("guard slot empty outside Condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard slot empty outside Condvar wait")
    }
}

/// Result of a timed wait on a [`Condvar`], mirroring
/// `parking_lot::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable, mirroring `parking_lot::Condvar` (wait methods take
/// the guard by `&mut` instead of by value).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until the condvar is notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard slot empty");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard slot empty");
        let (g, result) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(result.timed_out())
    }

    /// Blocks until notified or the `deadline` instant is reached.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Wakes one waiter. Returns whether a thread was woken (always `false`
    /// here: std does not report it, and no caller in this workspace uses the
    /// return value).
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        false
    }

    /// Wakes all waiters. Returns the number woken (always 0 here, see
    /// [`Self::notify_one`]).
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

/// A reader-writer lock (no poisoning), mirroring `parking_lot::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let result = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(result.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        waiter.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(7u32);
        assert_eq!(*l.read(), 7);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
