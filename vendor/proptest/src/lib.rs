//! Vendored minimal stand-in for `proptest`.
//!
//! The build container has no network access, so the real `proptest` cannot
//! be fetched.  This crate implements the subset its users in this workspace
//! rely on: the `proptest!` macro, integer-range and `any::<T>()` strategies,
//! tuple and `collection::vec` combinators, and the `prop_assert*` /
//! `prop_assume!` macros.  Each property runs 256 deterministic cases from a
//! fixed-seed SplitMix64 generator.  Shrinking is not implemented — a failing
//! case panics with the generated inputs' debug representation instead.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Deterministic SplitMix64 random number generator.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a fixed seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift reduction; bias is irrelevant for testing purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A generator of values of type `Value`.
///
/// Unlike real proptest there is no shrinking: a strategy only knows how to
/// produce a value from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of values this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                let offset = rng.below(span);
                ((self.start as i128) + offset as i128) as $ty
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy producing any value of `T` (full range for integers).
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a canonical full-range strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the full-range strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// is drawn uniformly from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner plumbing used by the [`proptest!`] expansion.
pub mod test_runner {
    /// Number of cases each property runs.
    pub const CASES: u32 = 256;

    /// Outcome of a single generated case.
    pub enum CaseResult {
        /// The case passed.
        Pass,
        /// `prop_assume!` rejected the inputs; the case does not count.
        Reject,
    }

    /// Prints the generated inputs when a case panics, so a failure is
    /// reproducible even without shrinking.
    pub struct PanicPrinter {
        /// Debug rendering of the case's generated inputs.
        pub inputs: String,
        /// Case index within the run.
        pub case: u32,
    }

    impl Drop for PanicPrinter {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest: failing case #{} with inputs: {}",
                    self.case, self.inputs
                );
            }
        }
    }

    /// FNV-1a hash of a test name, used as a per-test RNG seed.
    pub const fn seed_from_name(name: &str) -> u64 {
        let bytes = name.as_bytes();
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        let mut i = 0;
        while i < bytes.len() {
            hash ^= bytes[i] as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            i += 1;
        }
        hash
    }
}

/// The `proptest::prelude` glob import surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        Strategy, TestRng,
    };
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a `#[test]`
/// that runs [`test_runner::CASES`] deterministic cases.  A failing assertion
/// panics with the generated inputs so the case can be reproduced by reading
/// the panic message (there is no shrinking).
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::TestRng::new($crate::test_runner::seed_from_name(stringify!($name)));
            for case in 0..$crate::test_runner::CASES {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let printer = $crate::test_runner::PanicPrinter {
                    inputs: format!(
                        concat!($(stringify!($arg), " = {:?}  "),+),
                        $(&$arg),+
                    ),
                    case,
                };
                let result: $crate::test_runner::CaseResult = (|| {
                    $body
                    $crate::test_runner::CaseResult::Pass
                })();
                drop(printer);
                match result {
                    $crate::test_runner::CaseResult::Pass
                    | $crate::test_runner::CaseResult::Reject => {}
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Skips the current case when its generated inputs are not interesting.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::test_runner::CaseResult::Reject;
        }
    };
}
