//! Vendored minimal stand-in for `serde`.
//!
//! The build container has no network access, so the real `serde` cannot be
//! fetched from a registry.  The workspace only uses serde as a *marker* —
//! types carry `#[derive(Serialize, Deserialize)]` so they are ready for a
//! real format crate, but nothing serializes at runtime.  This crate supplies
//! the two trait names and (behind the `derive` feature) re-exports the no-op
//! derive macros, mirroring the real crate's namespace layout so `use
//! serde::{Serialize, Deserialize}` resolves both the traits and the derives.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Stand-in for the `serde::de` module.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Stand-in for the `serde::ser` module.
pub mod ser {
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
