//! Vendored stand-in for `serde_derive`.
//!
//! The container this workspace builds in has no network access, so the real
//! `serde_derive` cannot be fetched.  Nothing in the workspace serializes at
//! runtime (there is no `serde_json` or other format crate); the derives only
//! need to *exist* so that `#[derive(Serialize, Deserialize)]` compiles.  Both
//! macros therefore accept the input (including `#[serde(...)]` attributes)
//! and expand to nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
